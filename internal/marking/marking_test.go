package marking

import (
	"testing"
	"testing/quick"

	"clustercast/internal/geom"
	"clustercast/internal/graph"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1)
	}
	return g
}

func TestMarkingPath(t *testing.T) {
	// On a path every interior node has two non-adjacent neighbors; the
	// rules cannot prune (no closed-neighborhood containment on a path of
	// distinct interior nodes), so the CDS is the n−2 interior nodes.
	g := pathGraph(6)
	set := Build(g)
	if graph.SetSize(set) != 4 {
		t.Fatalf("path CDS = %v, want interior nodes", graph.SortedMembers(set))
	}
	if set[0] || set[5] {
		t.Fatal("endpoints must not be marked")
	}
	if !g.IsCDS(set) {
		t.Fatal("marking on a path must yield a CDS")
	}
}

func TestMarkingCompleteGraph(t *testing.T) {
	g := graph.New(4)
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			g.AddEdge(u, v)
		}
	}
	set := Build(g)
	if graph.SetSize(set) != 1 {
		t.Fatalf("complete graph fallback: %v", graph.SortedMembers(set))
	}
	if !g.IsCDS(set) {
		t.Fatal("fallback must still be a CDS")
	}
}

func TestMarkingStar(t *testing.T) {
	g := graph.FromEdges(5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	set := Build(g)
	if graph.SetSize(set) != 1 || !set[0] {
		t.Fatalf("star CDS = %v, want {0}", graph.SortedMembers(set))
	}
}

func TestRule1Prunes(t *testing.T) {
	// Two adjacent centers with identical leaf coverage: 0 and 1 both see
	// leaves 2,3; N[0] ⊆ N[1], id 0 < 1 → 0 unmarks, 1 stays.
	g := graph.FromEdges(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}})
	set := Build(g)
	if set[0] {
		t.Fatalf("Rule 1 should have unmarked node 0: %v", graph.SortedMembers(set))
	}
	if !set[1] {
		t.Fatal("node 1 must stay marked")
	}
	if !g.IsCDS(set) {
		t.Fatal("result must be a CDS")
	}
}

func TestMarkingEmptyAndSingle(t *testing.T) {
	if got := Build(graph.New(0)); len(got) != 0 {
		t.Fatal("empty graph")
	}
	if got := Build(graph.New(1)); graph.SetSize(got) != 1 {
		t.Fatal("single node must dominate itself")
	}
}

// Property: the marking process yields a CDS on random connected networks
// and never exceeds the full node set.
func TestQuickMarkingIsCDS(t *testing.T) {
	f := func(seed uint64, dense bool) bool {
		deg := 6.0
		if dense {
			deg = 18.0
		}
		r := rng.New(seed)
		nw, err := topology.Generate(topology.Config{
			N: 50, Bounds: geom.Square(100), AvgDegree: deg,
			RequireConnected: true, MaxAttempts: 400,
		}, r)
		if err != nil {
			return true
		}
		set := Build(nw.G)
		return nw.G.IsCDS(set) && graph.SetSize(set) <= nw.G.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Rules 1+2 only shrink the plain marking.
func TestQuickRulesOnlyShrink(t *testing.T) {
	plainMarking := func(g *graph.Graph) int {
		nbr := make([]map[int]bool, g.N())
		for v := 0; v < g.N(); v++ {
			m := make(map[int]bool)
			for _, u := range g.Neighbors(v) {
				m[u] = true
			}
			nbr[v] = m
		}
		count := 0
		for v := 0; v < g.N(); v++ {
			list := g.Neighbors(v)
			found := false
			for i := 0; i < len(list) && !found; i++ {
				for j := i + 1; j < len(list); j++ {
					if !nbr[list[i]][list[j]] {
						found = true
						break
					}
				}
			}
			if found {
				count++
			}
		}
		return count
	}
	f := func(seed uint64) bool {
		r := rng.New(seed)
		nw, err := topology.Generate(topology.Config{
			N: 40, Bounds: geom.Square(100), AvgDegree: 10,
			RequireConnected: true, MaxAttempts: 400,
		}, r)
		if err != nil {
			return true
		}
		pruned := graph.SetSize(Build(nw.G))
		plain := plainMarking(nw.G)
		if plain == 0 {
			return pruned == 1 // complete-graph fallback
		}
		return pruned <= plain
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMarking100(b *testing.B) {
	r := rng.New(1)
	nw, err := topology.Generate(topology.Config{
		N: 100, Bounds: geom.Square(100), AvgDegree: 18, RequireConnected: true,
	}, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Build(nw.G)
	}
}
