package stats

import "sync"

// BatchLanes is the replicate width of one batched estimator call: the
// bit-parallel engines advance 64 replicates per machine word, so a batch
// estimator observes 64 replicates at once. Batch b covers replicates
// [64b, 64b+64), lane l of batch b being replicate 64b+l.
const BatchLanes = 64

// BatchObs carries one batch's observations: X[l] is lane l's value, OK[l]
// false skips that lane (a discarded replicate, exactly like the scalar
// estimators' ok=false).
type BatchObs struct {
	X  [BatchLanes]float64
	OK [BatchLanes]bool
}

// ReplicateBatch drives a 64-wide batched estimator until the stopping rule
// is met. One estimator call produces the observations of 64 consecutive
// replicates; they are folded strictly in replicate order, re-checking the
// rule before each — exactly the schedule of the sequential Replicate loop
// over the lane-decomposed scalar estimator. The estimator must derive all
// randomness from the batch index alone (the lane-indexed coin discipline
// of the batch kernels guarantees this), so the resulting Summary is
// bit-identical to the scalar path for every worker count: parallelism and
// batching only change how many speculative replicates past the stop point
// are computed and discarded (at most 64·workers−1).
//
// As in ReplicateNWorker, batch b always runs on worker b % workers, so
// per-worker workspaces keep a deterministic schedule. Workers are a
// persistent pool for the life of the call.
func ReplicateBatch(rule StopRule, workers int, estimator func(worker, batch int) BatchObs) (*Summary, error) {
	rule = rule.normalized()
	s := &Summary{}
	skips := 0
	// fold plays one batch's lanes through the stopping rule in replicate
	// order; done means the caller returns (s, err) immediately.
	fold := func(o *BatchObs) (bool, error) {
		for l := 0; l < BatchLanes; l++ {
			if rule.Done(s) {
				return true, nil
			}
			if !o.OK[l] {
				skips++
				mSkips.Inc()
				if done, err := skip(rule, s, &skips); done {
					return true, err
				}
				continue
			}
			s.Add(o.X[l])
			mObservations.Inc()
			progReplicates.Step()
		}
		return false, nil
	}
	if workers <= 1 {
		for b := 0; ; b++ {
			if rule.Done(s) {
				return s, nil
			}
			o := estimator(0, b)
			if done, err := fold(&o); done {
				return s, err
			}
		}
	}
	results := make([]BatchObs, workers)
	feed := make([]chan int, workers)
	var wg sync.WaitGroup
	for i := range feed {
		feed[i] = make(chan int, 1)
		go func(i int) {
			for b := range feed[i] {
				results[i] = estimator(i, b)
				wg.Done()
			}
		}(i)
	}
	defer func() {
		for _, ch := range feed {
			close(ch)
		}
	}()
	for next := 0; ; next += workers {
		if rule.Done(s) {
			return s, nil
		}
		wg.Add(workers)
		for i, ch := range feed {
			ch <- next + i
		}
		wg.Wait()
		for i := 0; i < workers; i++ {
			if done, err := fold(&results[i]); done {
				return s, err
			}
		}
	}
}
