package stats

import (
	"errors"
	"math"
	"testing"
)

// TestSummaryEmptyMinMaxNaN is the regression test for the empty-summary
// extremes: Min/Max used to return 0 for n == 0, indistinguishable from a
// genuine 0 observation.
func TestSummaryEmptyMinMaxNaN(t *testing.T) {
	s := &Summary{}
	if !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Fatalf("empty summary Min/Max = %g/%g, want NaN/NaN", s.Min(), s.Max())
	}
	s.Add(0)
	if s.Min() != 0 || s.Max() != 0 {
		t.Fatalf("a real 0 observation must survive: Min/Max = %g/%g", s.Min(), s.Max())
	}
}

// TestReplicateAllSkippedYieldsEmptySummary drives the empty-summary path
// through the replication loop, the way a heavy fault schedule would when
// every replicate is discarded.
func TestReplicateAllSkippedYieldsEmptySummary(t *testing.T) {
	rule := StopRule{Confidence: 0.95, RelHalfWidth: 0.1, MinReplicates: 5, MaxReplicates: 20}
	s, err := Replicate(rule, func(rep int) (float64, bool) { return 0, false })
	if !errors.Is(err, ErrNoObservations) {
		t.Fatalf("all-skip replicate: err = %v, want ErrNoObservations", err)
	}
	if s.N() != 0 {
		t.Fatalf("all-skip replicate produced %d observations", s.N())
	}
	if !math.IsNaN(s.Min()) || !math.IsNaN(s.Max()) {
		t.Fatalf("all-skip summary Min/Max = %g/%g, want NaN", s.Min(), s.Max())
	}

	// The parallel driver must agree.
	s2, err2 := ReplicateN(rule, 4, func(rep int) (float64, bool) { return 0, false })
	if !errors.Is(err2, ErrNoObservations) {
		t.Fatalf("parallel all-skip: err = %v, want ErrNoObservations", err2)
	}
	if s2.N() != 0 || !math.IsNaN(s2.Min()) || !math.IsNaN(s2.Max()) {
		t.Fatalf("parallel all-skip summary: n=%d min=%g max=%g", s2.N(), s2.Min(), s2.Max())
	}
}
