// Package stats provides the statistical machinery behind the paper's
// evaluation methodology: descriptive statistics, Student-t confidence
// intervals, and the replication loop "repeat the simulation until the 99%
// confidence interval of the result is within ±5%".
package stats

import (
	"errors"
	"math"
	"sync"

	"clustercast/internal/obs"
)

// Replication metrics: observations folded into summaries and replicates
// skipped (discarded disconnected topologies). Incremented once per
// replicate, so the disabled cost is one atomic load per replicate.
var (
	mObservations = obs.NewCounter("replicate.observations")
	mSkips        = obs.NewCounter("replicate.skips")
	// progReplicates feeds the live telemetry layer a replicate-level
	// completion rate. The adaptive stopping rule makes the total unknown
	// up front, so heartbeat views report done/rate with ETA -1.
	progReplicates = obs.NewProgress("replicate")
)

// Summary holds running moments of a sample (Welford's algorithm, so a
// million replicates cost O(1) memory and stay numerically stable).
type Summary struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations.
func (s *Summary) N() int { return s.n }

// Mean returns the sample mean (0 for an empty summary).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation (NaN for an empty summary — a 0
// would be indistinguishable from a genuine 0 observation, e.g. when every
// replicate of a point was skipped).
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest observation (NaN for an empty summary, like Min).
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// Variance returns the unbiased sample variance (0 when n < 2).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// CI returns the half-width of the two-sided confidence interval for the
// mean at the given confidence level (e.g. 0.99), using the Student-t
// distribution with n−1 degrees of freedom. It returns +Inf when n < 2.
func (s *Summary) CI(confidence float64) float64 {
	if s.n < 2 {
		return math.Inf(1)
	}
	t := TQuantile(1-(1-confidence)/2, s.n-1)
	return t * s.StdErr()
}

// lgamma returns log Γ(x) for x > 0.
func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaIncReg computes the regularized incomplete beta function I_x(a, b)
// by the continued-fraction expansion (Lentz's method), following the
// classic Numerical Recipes formulation.
func betaIncReg(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b) + a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(lbeta)
	// Use the symmetry relation to keep the continued fraction convergent.
	if x > (a+1)/(a+b+2) {
		return 1 - betaIncReg(b, a, 1-x)
	}
	const (
		maxIter = 500
		eps     = 1e-14
		tiny    = 1e-300
	)
	c := 1.0
	d := 1 - (a+b)*x/(a+1)
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		// Even step.
		num := fm * (b - fm) * x / ((a + 2*fm - 1) * (a + 2*fm))
		d = 1 + num*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		d = 1 / d
		c = 1 + num/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		h *= d * c
		// Odd step.
		num = -(a + fm) * (a + b + fm) * x / ((a + 2*fm) * (a + 2*fm + 1))
		d = 1 + num*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		d = 1 / d
		c = 1 + num/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return front * h / a
}

// tCDF is the cumulative distribution function of Student's t with df
// degrees of freedom.
func tCDF(t float64, df int) float64 {
	if df <= 0 {
		panic("stats: non-positive degrees of freedom")
	}
	v := float64(df)
	x := v / (v + t*t)
	p := 0.5 * betaIncReg(v/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// TQuantile returns the p-quantile (0 < p < 1) of Student's t distribution
// with df degrees of freedom, by bisection on the CDF. Accuracy ~1e-10,
// plenty for confidence intervals.
func TQuantile(p float64, df int) float64 {
	if p <= 0 || p >= 1 {
		panic("stats: quantile probability out of (0,1)")
	}
	if p == 0.5 {
		return 0
	}
	if p < 0.5 {
		return -TQuantile(1-p, df)
	}
	lo, hi := 0.0, 2.0
	for tCDF(hi, df) < p {
		hi *= 2
		if hi > 1e12 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if tCDF(mid, df) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2
}

// StopRule is the paper's replication stopping rule.
type StopRule struct {
	// Confidence of the interval (paper: 0.99).
	Confidence float64
	// RelHalfWidth is the target half-width relative to the mean
	// (paper: 0.05).
	RelHalfWidth float64
	// MinReplicates guards against lucky early stops (default 30).
	MinReplicates int
	// MaxReplicates bounds runtime (default 10000).
	MaxReplicates int
}

// PaperRule returns the rule used throughout the paper's simulations:
// replicate until the 99% CI is within ±5% of the mean.
func PaperRule() StopRule {
	return StopRule{Confidence: 0.99, RelHalfWidth: 0.05}
}

// normalized fills defaults.
func (r StopRule) normalized() StopRule {
	if r.Confidence == 0 {
		r.Confidence = 0.99
	}
	if r.RelHalfWidth == 0 {
		r.RelHalfWidth = 0.05
	}
	if r.MinReplicates == 0 {
		r.MinReplicates = 30
	}
	if r.MaxReplicates == 0 {
		r.MaxReplicates = 10000
	}
	return r
}

// Done reports whether the summary satisfies the rule.
func (r StopRule) Done(s *Summary) bool {
	r = r.normalized()
	if s.N() < r.MinReplicates {
		return false
	}
	if s.N() >= r.MaxReplicates {
		return true
	}
	mean := math.Abs(s.Mean())
	if mean == 0 {
		// A degenerate all-zero sample: the CI half-width is 0 too, and
		// the relative criterion is vacuously met.
		return s.CI(r.Confidence) == 0
	}
	return s.CI(r.Confidence) <= r.RelHalfWidth*mean
}

// ErrNoObservations is returned by Replicate when the estimator never
// produces a value.
var ErrNoObservations = errors.New("stats: estimator produced no observations")

// Replicate drives an estimator until the stopping rule is met. The
// estimator receives the replicate index and returns one observation and
// ok=false to skip (e.g. a discarded disconnected topology — skips do not
// count toward the replicate budget beyond a 10× safety factor).
func Replicate(rule StopRule, estimator func(rep int) (float64, bool)) (*Summary, error) {
	rule = rule.normalized()
	s := &Summary{}
	skips := 0
	for rep := 0; ; rep++ {
		if rule.Done(s) {
			return s, nil
		}
		x, ok := estimator(rep)
		if !ok {
			skips++
			mSkips.Inc()
			if done, err := skip(rule, s, &skips); done {
				return s, err
			}
			continue
		}
		s.Add(x)
		mObservations.Inc()
		progReplicates.Step()
	}
}

// skip applies the skip-budget bookkeeping shared by Replicate and
// ReplicateN: too many skipped replicates end the run, with
// ErrNoObservations when nothing was ever observed.
func skip(rule StopRule, s *Summary, skips *int) (bool, error) {
	if *skips > 10*rule.MaxReplicates {
		if s.N() == 0 {
			return true, ErrNoObservations
		}
		return true, nil
	}
	return false, nil
}

// ReplicateN is Replicate with speculative parallel batches: replicates
// [k, k+workers) run concurrently, then their observations are folded
// strictly in replicate order, re-checking the stopping rule before each —
// exactly the schedule of the sequential loop. Because the estimator must
// derive any randomness from the replicate index alone (true for the
// experiment package's seeding discipline, and required for Replicate to be
// reproducible in the first place), the resulting Summary is bit-identical
// to Replicate's for every worker count; parallelism only changes how many
// speculative replicates past the stop point are computed and discarded
// (at most workers−1).
func ReplicateN(rule StopRule, workers int, estimator func(rep int) (float64, bool)) (*Summary, error) {
	return ReplicateNWorker(rule, workers, func(_, rep int) (float64, bool) {
		return estimator(rep)
	})
}

// ReplicateNWorker is ReplicateN for estimators that reuse per-worker
// state: the estimator additionally receives a stable worker index in
// [0, workers) — replicate rep always runs on worker rep % workers — so
// each worker can keep one workspace and the schedule stays deterministic.
// The sequential path (workers <= 1) always passes worker 0.
//
// The workers are a persistent pool for the life of the call: spawned
// once, fed one replicate index per round over per-worker channels, and
// released on return. A round therefore costs one channel round-trip per
// worker instead of a goroutine spawn, and the steady-state loop does not
// allocate (see TestReplicateNWorkerPooledAllocs).
func ReplicateNWorker(rule StopRule, workers int, estimator func(worker, rep int) (float64, bool)) (*Summary, error) {
	if workers <= 1 {
		return Replicate(rule, func(rep int) (float64, bool) {
			return estimator(0, rep)
		})
	}
	rule = rule.normalized()
	s := &Summary{}
	skips := 0
	type spec struct {
		x  float64
		ok bool
	}
	batch := make([]spec, workers)
	feed := make([]chan int, workers)
	var wg sync.WaitGroup
	for i := range feed {
		feed[i] = make(chan int, 1)
		go func(i int) {
			for rep := range feed[i] {
				x, ok := estimator(i, rep)
				batch[i] = spec{x, ok}
				wg.Done()
			}
		}(i)
	}
	defer func() {
		for _, ch := range feed {
			close(ch)
		}
	}()
	for next := 0; ; next += workers {
		if rule.Done(s) {
			return s, nil
		}
		wg.Add(workers)
		for i, ch := range feed {
			ch <- next + i
		}
		wg.Wait()
		for i := 0; i < workers; i++ {
			if rule.Done(s) {
				return s, nil
			}
			if !batch[i].ok {
				skips++
				mSkips.Inc()
				if done, err := skip(rule, s, &skips); done {
					return s, err
				}
				continue
			}
			s.Add(batch[i].x)
			mObservations.Inc()
			progReplicates.Step()
		}
	}
}
