package stats

import (
	"errors"
	"testing"
)

// laneValue is a deterministic pseudo-observation for replicate rep: a
// fixed-point hash in [0.5, 1.5) so means stay away from zero and the rule
// terminates.
func laneValue(rep int) float64 {
	h := uint64(rep+1) * 0x9E3779B97F4A7C15
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return 0.5 + float64(h>>11)/(1<<53)
}

// laneOK skips roughly one replicate in seven.
func laneOK(rep int) bool {
	return (uint64(rep+1)*0xFF51AFD7ED558CCD>>33)%7 != 0
}

// summariesEqual compares every exported moment exactly: bit-identity is
// the contract.
func summariesEqual(a, b *Summary) bool {
	if a.N() != b.N() || a.Mean() != b.Mean() || a.Variance() != b.Variance() {
		return false
	}
	if a.N() == 0 {
		return true
	}
	return a.Min() == b.Min() && a.Max() == b.Max()
}

// TestReplicateBatchMatchesScalar is the stats-level half of the tentpole's
// correctness bar: folding 64-wide batches must yield the same Summary,
// bit for bit, as the sequential Replicate over the lane-decomposed scalar
// estimator — at every worker count, with and without skipped lanes.
func TestReplicateBatchMatchesScalar(t *testing.T) {
	rule := StopRule{MinReplicates: 100, MaxReplicates: 1000}
	for _, withSkips := range []bool{false, true} {
		ok := func(rep int) bool { return !withSkips || laneOK(rep) }
		want, err := Replicate(rule, func(rep int) (float64, bool) {
			return laneValue(rep), ok(rep)
		})
		if err != nil {
			t.Fatal(err)
		}
		est := func(_, batch int) BatchObs {
			var o BatchObs
			for l := 0; l < BatchLanes; l++ {
				rep := batch*BatchLanes + l
				o.X[l], o.OK[l] = laneValue(rep), ok(rep)
			}
			return o
		}
		for workers := 1; workers <= 8; workers++ {
			got, err := ReplicateBatch(rule, workers, est)
			if err != nil {
				t.Fatalf("skips=%v workers=%d: %v", withSkips, workers, err)
			}
			if !summariesEqual(got, want) {
				t.Errorf("skips=%v workers=%d: batch summary (n=%d mean=%v var=%v) != scalar (n=%d mean=%v var=%v)",
					withSkips, workers, got.N(), got.Mean(), got.Variance(),
					want.N(), want.Mean(), want.Variance())
			}
		}
	}
}

// TestReplicateBatchAllSkipped: an estimator that never observes ends with
// ErrNoObservations, like the scalar path.
func TestReplicateBatchAllSkipped(t *testing.T) {
	rule := StopRule{MinReplicates: 10, MaxReplicates: 20}
	for _, workers := range []int{1, 4} {
		_, err := ReplicateBatch(rule, workers, func(_, _ int) BatchObs { return BatchObs{} })
		if !errors.Is(err, ErrNoObservations) {
			t.Fatalf("workers=%d: err = %v, want ErrNoObservations", workers, err)
		}
	}
}

// TestReplicateBatchWorkerSchedule: batch b always lands on worker
// b % workers (per-worker workspaces depend on it).
func TestReplicateBatchWorkerSchedule(t *testing.T) {
	const workers = 4
	rule := StopRule{MinReplicates: 64 * workers * 3, MaxReplicates: 64 * workers * 3}
	var bad [workers]bool
	_, err := ReplicateBatch(rule, workers, func(worker, batch int) BatchObs {
		if batch%workers != worker {
			bad[worker] = true
		}
		var o BatchObs
		for l := range o.X {
			o.X[l], o.OK[l] = laneValue(batch*BatchLanes+l), true
		}
		return o
	})
	if err != nil {
		t.Fatal(err)
	}
	for w, b := range bad {
		if b {
			t.Errorf("worker %d saw a batch not congruent to it", w)
		}
	}
}

// TestReplicateNWorkerPooledAllocs is the worker-pool regression gate: the
// per-round goroutine spawn is gone, so allocations are a constant of the
// pool, not of the round count. The old implementation allocated at least
// one goroutine per worker per round (hundreds of allocations across the
// extra rounds measured here).
func TestReplicateNWorkerPooledAllocs(t *testing.T) {
	const workers = 4
	est := func(worker, rep int) (float64, bool) { return laneValue(rep), true }
	run := func(reps int) func() {
		rule := StopRule{MinReplicates: reps, MaxReplicates: reps}
		return func() {
			if _, err := ReplicateNWorker(rule, workers, est); err != nil {
				t.Fatal(err)
			}
		}
	}
	short := testing.AllocsPerRun(10, run(8*workers))
	long := testing.AllocsPerRun(10, run(200*workers))
	// 192 extra rounds; the old spawn-per-round loop cost ≥ workers allocs
	// per round. Allow a little scheduler noise, nothing near that.
	if long > short+24 {
		t.Errorf("allocs grow with round count: %v for %d rounds vs %v for %d rounds",
			long, 200, short, 8)
	}
}

// TestReplicateNWorkerPoolStillExact: the pooled rewrite keeps the
// bit-identical-to-sequential contract.
func TestReplicateNWorkerPoolStillExact(t *testing.T) {
	rule := StopRule{MinReplicates: 50, MaxReplicates: 500}
	want, err := Replicate(rule, func(rep int) (float64, bool) { return laneValue(rep), laneOK(rep) })
	if err != nil {
		t.Fatal(err)
	}
	for workers := 2; workers <= 8; workers++ {
		got, err := ReplicateNWorker(rule, workers, func(_, rep int) (float64, bool) {
			return laneValue(rep), laneOK(rep)
		})
		if err != nil {
			t.Fatal(err)
		}
		if !summariesEqual(got, want) {
			t.Errorf("workers=%d: pooled summary differs from sequential", workers)
		}
	}
}
