package stats

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"clustercast/internal/rng"
)

func TestSummaryBasics(t *testing.T) {
	s := &Summary{}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %g", s.Mean())
	}
	// Sample variance of the classic dataset = 32/7.
	if math.Abs(s.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("Variance = %g, want %g", s.Variance(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %g/%g", s.Min(), s.Max())
	}
}

func TestSummaryEmptyAndSingle(t *testing.T) {
	s := &Summary{}
	if s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 {
		t.Fatal("empty summary should be all zeros")
	}
	if !math.IsInf(s.CI(0.99), 1) {
		t.Fatal("CI of empty summary must be +Inf")
	}
	s.Add(3)
	if s.Mean() != 3 || s.Variance() != 0 {
		t.Fatal("single observation stats wrong")
	}
	if !math.IsInf(s.CI(0.99), 1) {
		t.Fatal("CI with one observation must be +Inf")
	}
}

// TestTQuantileKnownValues checks against standard t-table values
// (two-sided 99% → p = 0.995).
func TestTQuantileKnownValues(t *testing.T) {
	cases := []struct {
		p    float64
		df   int
		want float64
		tol  float64
	}{
		{0.995, 1, 63.657, 0.01},
		{0.995, 2, 9.925, 0.005},
		{0.995, 10, 3.169, 0.005},
		{0.995, 30, 2.750, 0.005},
		{0.995, 100, 2.626, 0.005},
		{0.975, 10, 2.228, 0.005},
		{0.975, 30, 2.042, 0.005},
		{0.95, 5, 2.015, 0.005},
		{0.90, 20, 1.325, 0.005},
	}
	for _, c := range cases {
		got := TQuantile(c.p, c.df)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("TQuantile(%g, %d) = %.4f, want %.3f", c.p, c.df, got, c.want)
		}
	}
}

func TestTQuantileSymmetry(t *testing.T) {
	for _, df := range []int{1, 5, 50} {
		if got := TQuantile(0.5, df); got != 0 {
			t.Fatalf("median of t(%d) = %g, want 0", df, got)
		}
		a := TQuantile(0.9, df)
		b := TQuantile(0.1, df)
		if math.Abs(a+b) > 1e-9 {
			t.Fatalf("t(%d) quantiles not symmetric: %g vs %g", df, a, b)
		}
	}
}

func TestTQuantileApproachesNormal(t *testing.T) {
	// For large df the t quantile approaches the standard normal 2.5758
	// (p=0.995).
	got := TQuantile(0.995, 100000)
	if math.Abs(got-2.5758) > 0.002 {
		t.Fatalf("t(∞) 0.995 quantile = %.4f, want ≈2.5758", got)
	}
}

func TestTQuantilePanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("TQuantile(%g, 5) must panic", p)
				}
			}()
			TQuantile(p, 5)
		}()
	}
}

func TestBetaIncRegBounds(t *testing.T) {
	if betaIncReg(2, 3, 0) != 0 || betaIncReg(2, 3, 1) != 1 {
		t.Fatal("betaIncReg boundary values wrong")
	}
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0.1, 0.35, 0.5, 0.9} {
		if got := betaIncReg(1, 1, x); math.Abs(got-x) > 1e-12 {
			t.Fatalf("I_%g(1,1) = %g", x, got)
		}
	}
	// I_x(1/2,1/2) = (2/π) arcsin(√x).
	for _, x := range []float64{0.2, 0.5, 0.8} {
		want := 2 / math.Pi * math.Asin(math.Sqrt(x))
		if got := betaIncReg(0.5, 0.5, x); math.Abs(got-want) > 1e-10 {
			t.Fatalf("I_%g(.5,.5) = %g, want %g", x, got, want)
		}
	}
}

func TestCIShrinksWithN(t *testing.T) {
	r := rng.New(7)
	s := &Summary{}
	var prev float64 = math.Inf(1)
	for _, n := range []int{10, 100, 1000} {
		for s.N() < n {
			s.Add(10 + r.NormFloat64())
		}
		ci := s.CI(0.99)
		if ci >= prev {
			t.Fatalf("CI did not shrink: %g -> %g at n=%d", prev, ci, n)
		}
		prev = ci
	}
}

func TestStopRuleDone(t *testing.T) {
	rule := PaperRule()
	s := &Summary{}
	if rule.Done(s) {
		t.Fatal("empty summary cannot be done")
	}
	// Constant observations: done as soon as MinReplicates reached.
	for i := 0; i < 29; i++ {
		s.Add(5)
	}
	if rule.Done(s) {
		t.Fatal("must not stop before MinReplicates")
	}
	s.Add(5)
	if !rule.Done(s) {
		t.Fatal("constant sample at MinReplicates must stop")
	}
}

func TestStopRuleZeroMean(t *testing.T) {
	rule := PaperRule()
	s := &Summary{}
	for i := 0; i < 30; i++ {
		s.Add(0)
	}
	if !rule.Done(s) {
		t.Fatal("all-zero sample must stop (degenerate case)")
	}
	// Zero mean with variance: never satisfies the relative rule until
	// MaxReplicates.
	s2 := &Summary{}
	for i := 0; i < 40; i++ {
		if i%2 == 0 {
			s2.Add(1)
		} else {
			s2.Add(-1)
		}
	}
	if rule.Done(s2) {
		t.Fatal("zero-mean noisy sample must not stop early")
	}
}

func TestStopRuleMaxReplicates(t *testing.T) {
	rule := StopRule{Confidence: 0.99, RelHalfWidth: 1e-9, MaxReplicates: 50}
	s := &Summary{}
	r := rng.New(3)
	for i := 0; i < 50; i++ {
		s.Add(r.NormFloat64())
	}
	if !rule.Done(s) {
		t.Fatal("must stop at MaxReplicates")
	}
}

func TestReplicateConverges(t *testing.T) {
	r := rng.New(11)
	s, err := Replicate(PaperRule(), func(rep int) (float64, bool) {
		return 20 + r.NormFloat64(), true
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.N() < 30 {
		t.Fatalf("stopped after only %d replicates", s.N())
	}
	if math.Abs(s.Mean()-20) > 1 {
		t.Fatalf("mean %g far from 20", s.Mean())
	}
	// The stopping criterion must actually hold.
	if s.CI(0.99) > 0.05*s.Mean()+1e-9 {
		t.Fatalf("CI %g exceeds 5%% of mean %g", s.CI(0.99), s.Mean())
	}
}

func TestReplicateSkips(t *testing.T) {
	r := rng.New(13)
	calls := 0
	s, err := Replicate(PaperRule(), func(rep int) (float64, bool) {
		calls++
		if calls%3 == 0 {
			return 0, false // every third topology "disconnected"
		}
		return 10 + r.NormFloat64()*0.1, true
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.N() < 30 {
		t.Fatalf("only %d accepted replicates", s.N())
	}
}

func TestReplicateAllSkipped(t *testing.T) {
	rule := StopRule{MaxReplicates: 5}
	_, err := Replicate(rule, func(rep int) (float64, bool) { return 0, false })
	if err != ErrNoObservations {
		t.Fatalf("want ErrNoObservations, got %v", err)
	}
}

// Property: Welford summary matches the naive two-pass computation.
func TestQuickWelfordMatchesNaive(t *testing.T) {
	f := func(seed uint64, sz uint8) bool {
		n := int(sz)%50 + 2
		r := rng.New(seed)
		xs := make([]float64, n)
		s := &Summary{}
		for i := range xs {
			xs[i] = r.Range(-100, 100)
			s.Add(xs[i])
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(n)
		variance := 0.0
		for _, x := range xs {
			variance += (x - mean) * (x - mean)
		}
		variance /= float64(n - 1)
		return math.Abs(s.Mean()-mean) < 1e-9 && math.Abs(s.Variance()-variance) < 1e-7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: tCDF is monotone and maps quantiles back correctly.
func TestQuickQuantileRoundTrip(t *testing.T) {
	f := func(pRaw uint16, dfRaw uint8) bool {
		p := 0.01 + 0.98*float64(pRaw)/65535
		df := int(dfRaw)%120 + 1
		q := TQuantile(p, df)
		back := tCDF(q, df)
		return math.Abs(back-p) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTQuantile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = TQuantile(0.995, 30+i%100)
	}
}

func TestReplicateDeterministicAcrossRuns(t *testing.T) {
	run := func() (float64, int) {
		r := rng.New(99)
		s, err := Replicate(PaperRule(), func(rep int) (float64, bool) {
			return 5 + r.NormFloat64()*0.2, true
		})
		if err != nil {
			t.Fatal(err)
		}
		return s.Mean(), s.N()
	}
	m1, n1 := run()
	m2, n2 := run()
	if m1 != m2 || n1 != n2 {
		t.Fatalf("replication not deterministic: (%g,%d) vs (%g,%d)", m1, n1, m2, n2)
	}
}

// deterministicEstimator returns an estimator whose observation for rep
// depends only on rep (the contract ReplicateN requires), with a skip
// pattern thrown in.
func deterministicEstimator(seed uint64) func(rep int) (float64, bool) {
	return func(rep int) (float64, bool) {
		h := seed ^ uint64(rep)*0x9E3779B97F4A7C15
		h ^= h >> 33
		h *= 0xFF51AFD7ED558CCD
		h ^= h >> 33
		if h%7 == 0 {
			return 0, false // deterministic skip
		}
		return 10 + float64(h%1000)/100, true
	}
}

// TestReplicateNMatchesSequential is the core determinism guarantee of the
// batched replication: for any worker count the resulting Summary is
// bit-identical to the sequential loop's.
func TestReplicateNMatchesSequential(t *testing.T) {
	rule := StopRule{Confidence: 0.99, RelHalfWidth: 0.05, MinReplicates: 30, MaxReplicates: 500}
	for _, seed := range []uint64{1, 42, 987654321} {
		want, err := Replicate(rule, deterministicEstimator(seed))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 3, 8, 64} {
			got, err := ReplicateN(rule, workers, deterministicEstimator(seed))
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if *got != *want {
				t.Fatalf("seed %d workers %d: summary diverged: %+v != %+v",
					seed, workers, got, want)
			}
		}
	}
}

// TestReplicateNAllSkipped mirrors TestReplicateAllSkipped for the batched
// path: an estimator that never produces a value ends with ErrNoObservations.
func TestReplicateNAllSkipped(t *testing.T) {
	rule := StopRule{MaxReplicates: 5}
	s, err := ReplicateN(rule, 4, func(rep int) (float64, bool) { return 0, false })
	if err != ErrNoObservations {
		t.Fatalf("err = %v, want ErrNoObservations", err)
	}
	if s.N() != 0 {
		t.Fatalf("N = %d, want 0", s.N())
	}
}

// TestReplicateNSpeculationBound pins the documented cost of speculation:
// no replicate index beyond the sequential stop point plus workers−1 is
// ever evaluated.
func TestReplicateNSpeculationBound(t *testing.T) {
	rule := StopRule{Confidence: 0.99, RelHalfWidth: 0.05, MinReplicates: 30, MaxReplicates: 100}
	// Sequential: find the largest rep the plain loop consults.
	maxSeq := -1
	if _, err := Replicate(rule, func(rep int) (float64, bool) {
		if rep > maxSeq {
			maxSeq = rep
		}
		return deterministicEstimator(3)(rep)
	}); err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var mu sync.Mutex
	maxPar := -1
	if _, err := ReplicateN(rule, workers, func(rep int) (float64, bool) {
		mu.Lock()
		if rep > maxPar {
			maxPar = rep
		}
		mu.Unlock()
		return deterministicEstimator(3)(rep)
	}); err != nil {
		t.Fatal(err)
	}
	// The batched run dispatches full batches, so it may look at up to
	// workers−1 indices past the last batch containing the stop point.
	limit := (maxSeq/workers+1)*workers - 1
	if maxPar > limit {
		t.Fatalf("speculation ran to rep %d, sequential stopped at %d (limit %d)",
			maxPar, maxSeq, limit)
	}
}
