package coverage

import (
	"math"
	"sort"

	"clustercast/internal/cluster"
	"clustercast/internal/graph"
)

// buildShard is the private state of one digest worker: its slice of the
// CH_HOP2 entry space lives in an arena only it appends to, and the
// published ch2 views point straight into the arena — the "merge" is the
// node-ordered view table itself, so no copy pass is needed. The arena is
// chunked: entries go into fixed-size chunks that are never reallocated,
// so published views stay valid without keeping dead arena generations
// alive — with a single growing arena, every realloc left the previous
// array pinned by the views published before it, and at large n the
// ballooning heap turned the digest into a GC storm. Chunks are reused
// across calls. hasm is the worker's mark scratch over the dense head
// universe (see digest32).
type buildShard struct {
	chunks  [][]Hop2Entry
	scratch []Hop2Entry
	hasm    AsmScratch
	obuf    []int32 // per-node probe gather buffers (one slot per neighbor)
	ebuf    []int32
	total   int // CH_HOP1 entries owned by this strip
}

// arenaChunk is the arena chunk capacity in entries (1 MiB chunks). One
// node's entries always live in one chunk: a flush that does not fit
// opens the next chunk, and a node with more entries than arenaChunk gets
// a dedicated chunk of its own size.
const arenaChunk = 1 << 16

// flush appends one node's deduplicated, sorted entries to the shard
// arena and returns the published full-slice-expression view.
func (sd *buildShard) flush(ci *int, scratch []Hop2Entry) []Hop2Entry {
	for {
		if *ci == len(sd.chunks) {
			c := arenaChunk
			if len(scratch) > c {
				c = len(scratch)
			}
			sd.chunks = append(sd.chunks, make([]Hop2Entry, 0, c))
		}
		cur := sd.chunks[*ci]
		if len(cur)+len(scratch) <= cap(cur) {
			start := len(cur)
			cur = append(cur, scratch...)
			sd.chunks[*ci] = cur
			return cur[start:len(cur):len(cur)]
		}
		*ci++
	}
}

// digest32 is the packed shadow of the CH_HOP1 digests and the cluster
// assignment ResetParallel builds alongside the []int views it publishes.
// Clusterheads are renumbered into dense indices 0..|heads|−1 (ascending,
// so dense order equals ID order): the CH_HOP2 pass performs ~2m random
// probes, and in dense-index space its mark array is |heads|-sized (~40 KB
// at n=100k, L1-resident) instead of n-sized, while the per-relay tables
// shrink to one int32 load each.
type digest32 struct {
	code  []int32 // code[v]: dense index of head[v]
	heads []int32 // cl.Heads as int32 (dense index -> head ID)
	hidx  []int32 // build scratch: head ID -> dense index (valid at head IDs only)
	off   []int32 // ch1 CSR offsets: ch1 of v is dat[off[v]:off[v+1]]
	dat   []int32 // ch1 CSR entries as dense head indices
}

// ResetParallel re-digests the builder exactly like Reset, with the
// per-node work sharded into contiguous ID strips across workers
// goroutines (sequentially when workers ≤ 1). The digests it publishes —
// ch1 layout included — are bit-identical to Reset's for any worker
// count; Reset remains the golden reference.
//
// Beyond the sharding, the CH_HOP2 pass here is restructured around two
// observations. First, candidates are deduplicated before they are
// sorted: entries stream by in ascending relay order through two epoch
// stamps (adjacent-head, already-sighted), so the first sighting of a
// clusterhead already carries its lowest relay and Reset's sort over the
// duplicate-heavy raw list becomes an insertion sort of the few
// survivors. Second, all random probes go through the dense-index int32
// shadow (digest32), and the 3-hop pass drops the is-head relay test
// entirely — a clusterhead's own ch1 list is empty by the independent-set
// property, so head relays contribute nothing either way. That, not the
// goroutines, is the sequential speedup of the -buildworkers path;
// equivalence is pinned by the digest tests and the fuzz target.
func (b *Builder) ResetParallel(g *graph.Graph, cl *cluster.Clustering, mode Mode, workers int) {
	n := g.N()
	if workers < 1 {
		workers = 1
	}
	b.g, b.cl, b.mode = g, cl, mode
	if cap(b.ch1) < n {
		b.ch1 = make([][]int, n)
		b.ch2 = make([][]Hop2Entry, n)
	}
	b.ch1 = b.ch1[:n]
	b.ch2 = b.ch2[:n]

	b.sh.ResetRange(n, workers)
	k := b.sh.K()
	if cap(b.shards) < k {
		b.shards = make([]buildShard, k)
	}
	shards := b.shards[:k]

	heads := cl.Heads
	head := cl.Head
	nh := len(heads)
	if cap(b.d32.code) < n {
		b.d32.code = make([]int32, n)
		b.d32.hidx = make([]int32, n)
		b.d32.off = make([]int32, n+1)
	}
	if cap(b.d32.heads) < nh {
		b.d32.heads = make([]int32, nh)
	}
	code := b.d32.code[:n]
	hidx := b.d32.hidx[:n]
	heads32 := b.d32.heads[:nh]
	for i, h := range heads {
		hidx[h] = int32(i)
		heads32[i] = int32(h)
	}

	// CH_HOP1 count pass: same head-scatter as Reset, restricted per strip
	// to the [lo, hi) slice of each head's ascending adjacency segment so
	// every cnt[v] has a single writer. The strip also renumbers its nodes'
	// cluster assignment into dense head indices.
	if cap(b.cnt) < n+1 {
		b.cnt = make([]int, n+1)
	}
	cnt := b.cnt[:n+1]
	b.sh.Each(workers, func(s int) {
		lo, hi := b.sh.Range(s)
		for v := lo; v < hi; v++ {
			cnt[v] = 0
			code[v] = hidx[head[v]]
		}
		total := 0
		if k == 1 {
			for _, h := range heads {
				for _, v := range g.Neighbors(h) {
					cnt[v]++
				}
				total += g.Degree(h)
			}
		} else {
			for _, h := range heads {
				nb := g.Neighbors(h)
				for _, v := range nb[sort.SearchInts(nb, lo):] {
					if v >= hi {
						break
					}
					cnt[v]++
					total++
				}
			}
		}
		shards[s].total = total
	})

	// Sequential stitch: prefix-sum the counts into start offsets and
	// publish the (still empty) views, exactly Reset's layout.
	total := 0
	for s := range shards {
		total += shards[s].total
	}
	// The int32 digest shadow addresses CH_HOP1 entries with 31-bit
	// offsets. Σ deg(head) ≈ n·d̄/π stays far below 2³¹ for every paper
	// regime (n=1M at d=18 is ~1.8M entries); a graph dense enough to
	// overflow would need ~2.1 billion head-adjacencies, so fail loudly
	// instead of corrupting the digest.
	if int64(total) > math.MaxInt32 {
		panic("coverage: CH_HOP1 digest exceeds 2^31 entries; the int32 digest shadow cannot address it")
	}
	if cap(b.ch1backing) < total {
		b.ch1backing = make([]int, total)
	}
	if cap(b.d32.dat) < total {
		b.d32.dat = make([]int32, total)
	}
	backing := b.ch1backing[:total]
	dat := b.d32.dat[:total]
	ch1off := b.d32.off[:n+1]
	off := 0
	for v := 0; v < n; v++ {
		c := cnt[v]
		b.ch1[v] = backing[off : off+c : off+c]
		ch1off[v] = int32(off)
		cnt[v] = off
		off += c
	}
	ch1off[n] = int32(off)
	b.ch1backing = backing
	b.d32.dat = dat

	// CH_HOP1 fill pass: cursor fill, per strip, heads ascending — each
	// ch1[v] comes out sorted and duplicate-free exactly as in Reset. The
	// dense-index shadow is filled through the same cursors.
	b.sh.Each(workers, func(s int) {
		if k == 1 {
			for hi32, h := range heads {
				for _, v := range g.Neighbors(h) {
					c := cnt[v]
					backing[c] = h
					dat[c] = int32(hi32)
					cnt[v] = c + 1
				}
			}
			return
		}
		lo, hi := b.sh.Range(s)
		for hi32, h := range heads {
			nb := g.Neighbors(h)
			for _, v := range nb[sort.SearchInts(nb, lo):] {
				if v >= hi {
					break
				}
				c := cnt[v]
				backing[c] = h
				dat[c] = int32(hi32)
				cnt[v] = c + 1
			}
		}
	})

	// CH_HOP2 pass, per strip: stream candidates in ascending relay order
	// through two stamps — epA marks v's adjacent heads (never reported),
	// epB marks clusterheads already sighted for v (the first sighting has
	// the lowest relay, which is exactly the entry Reset's sort-then-dedupe
	// keeps) — then insertion-sort the deduplicated survivors. The mark
	// array lives in dense-index space, and dense order equals ID order,
	// so sorting by W is unchanged.
	//
	// Each node's relay probes are split into a branch-free gather loop
	// (every neighbor's table entry into a local buffer) followed by the
	// consume loop. The gather's loads carry no cross-iteration
	// dependencies, so the out-of-order core keeps many cache misses in
	// flight at once instead of paying them one by one interleaved with
	// the consume branches — the probes are the digest's whole cost.
	b.sh.Each(workers, func(s int) {
		sd := &shards[s]
		sd.hasm.ensure(nh)
		if sd.scratch == nil {
			sd.scratch = make([]Hop2Entry, 0, 64)
		}
		scratch := sd.scratch[:0]
		for i := range sd.chunks {
			sd.chunks[i] = sd.chunks[i][:0]
		}
		ci := 0
		mark := sd.hasm.mark
		lo, hi := b.sh.Range(s)
		for v := lo; v < hi; v++ {
			if head[v] == v {
				b.ch2[v] = nil
				continue
			}
			nb := g.Neighbors(v)
			if len(nb) > cap(sd.obuf) {
				sd.obuf = make([]int32, len(nb)+16)
				sd.ebuf = make([]int32, len(nb)+16)
			}
			epA := sd.hasm.stamps(2)
			epB := epA + 1
			for _, wi := range dat[ch1off[v]:ch1off[v+1]] {
				mark[wi] = epA
			}
			scratch = scratch[:0]
			if mode == Hop25 {
				ob := sd.obuf[:len(nb)]
				for i, r := range nb {
					ob[i] = code[r]
				}
				for i, r := range nb {
					ci := ob[i]
					w := heads32[ci]
					if int(w) == r {
						continue // CH_HOP1 messages come from non-clusterheads only
					}
					if mark[ci] < epA {
						mark[ci] = epB
						scratch = append(scratch, Hop2Entry{W: int(w), R: r})
					}
				}
			} else {
				ob := sd.obuf[:len(nb)]
				eb := sd.ebuf[:len(nb)]
				for i, r := range nb {
					ob[i] = ch1off[r]
					eb[i] = ch1off[r+1]
				}
				for i, r := range nb {
					// No is-head test: a clusterhead r has an empty ch1 list
					// (clusterheads are pairwise non-adjacent), so the inner
					// loop skips it for free.
					for _, wi := range dat[ob[i]:eb[i]] {
						if mark[wi] < epA {
							mark[wi] = epB
							scratch = append(scratch, Hop2Entry{W: int(heads32[wi]), R: r})
						}
					}
				}
			}
			if len(scratch) == 0 {
				b.ch2[v] = nil
				continue
			}
			sortEntriesByW(scratch)
			b.ch2[v] = sd.flush(&ci, scratch)
		}
		sd.scratch = scratch
	})
}

// sortEntriesByW orders already-deduplicated CH_HOP2 entries by
// clusterhead ID (the Ws are distinct, so no relay tiebreak is needed).
func sortEntriesByW(es []Hop2Entry) {
	for i := 1; i < len(es); i++ {
		e := es[i]
		j := i - 1
		for j >= 0 && es[j].W > e.W {
			es[j+1] = es[j]
			j--
		}
		es[j+1] = e
	}
}
