// Package coverage computes clusterhead coverage sets, the paper's central
// data structure.
//
// A clusterhead u's coverage set C(u) = C²(u) ∪ C³(u) consists of the
// clusterheads u must connect to through selected gateways:
//
//   - C²(u): clusterheads exactly 2 hops from u (always included),
//   - C³(u): clusterheads 3 hops from u, where the two coverage-area
//     variants differ:
//
// With the 3-hop coverage set, C³(u) holds every clusterhead exactly 3 hops
// away. With the cheaper 2.5-hop coverage set, C³(u) only holds
// clusterheads w that have a *cluster member* within N²(u) — exactly the
// information the CH_HOP1/CH_HOP2 message exchange of the paper gathers:
// CH_HOP1(v) carries v's 1-hop neighboring clusterheads, and CH_HOP2(v)
// carries v's 2-hop clusterhead entries "w[r]" (w reachable via relay r,
// where — in the 2.5-hop variant — r is a member of w's cluster).
//
// Alongside the sets themselves the package records the connector
// bookkeeping the gateway selection needs: which neighbor v of u directly
// covers which 2-hop clusterheads (w ∈ CH_HOP1(v)) and which (v, r) pair
// reaches which 3-hop clusterhead (w[r] ∈ CH_HOP2(v)).
//
// Membership sets (C², C³) are graph.HybridSet values over the node-ID
// universe: coverage construction and the downstream greedy set-cover are
// the simulator's hottest kernels, and neighborhood-sized sorted-slice
// operations (promoting to word-parallel bitsets only past the density
// threshold) are what keep them O(coverage size) instead of Θ(n) at
// 10k–100k nodes.
package coverage

import (
	"sort"

	"clustercast/internal/cluster"
	"clustercast/internal/des"
	"clustercast/internal/graph"
)

// Mode selects the coverage-area variant.
type Mode uint8

const (
	// Hop25 is the 2.5-hop coverage set: C³ restricted to clusterheads
	// with a member in N²(u). Cheaper to maintain; the cluster graph may be
	// genuinely directed.
	Hop25 Mode = iota
	// Hop3 is the full 3-hop coverage set: C³ holds every clusterhead at
	// distance exactly 3. The cluster graph is symmetric.
	Hop3
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Hop25:
		return "2.5-hop"
	case Hop3:
		return "3-hop"
	default:
		return "unknown"
	}
}

// Hop2Entry is one CH_HOP2 report line: clusterhead w reachable through
// relay r.
type Hop2Entry struct{ W, R int }

// Connector is the coverage contribution of one neighbor v of the head:
// the 2-hop clusterheads v is adjacent to (Direct, sorted ascending) and
// the 3-hop clusterheads v reaches through a relay (Indirect, sorted by
// clusterhead ID, each with the lowest-ID relay per the "first entry wins"
// rule of the CH_HOP2 construction).
type Connector struct {
	V        int
	Direct   []int
	Indirect []Hop2Entry
}

// Relay returns the relay reaching 3-hop clusterhead w through this
// connector, if any.
func (cn *Connector) Relay(w int) (int, bool) {
	i := sort.Search(len(cn.Indirect), func(i int) bool { return cn.Indirect[i].W >= w })
	if i < len(cn.Indirect) && cn.Indirect[i].W == w {
		return cn.Indirect[i].R, true
	}
	return 0, false
}

// Coverage is the coverage set of one clusterhead together with the
// connector bookkeeping used by gateway selection.
type Coverage struct {
	Head int
	Mode Mode

	// C2 and C3 are the 2-hop and 3-hop components of the coverage set, as
	// adaptive hybrid sets over node IDs (sorted-slice while neighborhood-
	// sized, dense bitset past the density threshold). They are disjoint: a
	// clusterhead in both is kept only in C2.
	C2 *graph.HybridSet
	C3 *graph.HybridSet

	// Conns lists, ascending by neighbor ID, the neighbors of the head
	// that contribute coverage, with what each covers. Plain sorted slices
	// instead of maps: gateway selection scans them in tight loops, and a
	// slice walk is both faster and deterministic.
	Conns []Connector

	// Construction backing, kept on the value so OfReuse can refill a
	// Coverage without allocating: the Conns slices above are views into
	// direct/indirect, addressed during assembly by the offset arrays.
	dirOff   []int
	indOff   []int
	direct   []int
	indirect []Hop2Entry
}

// Connector returns the connector of neighbor v, or nil when v
// contributes no coverage.
func (c *Coverage) Connector(v int) *Connector {
	i := sort.Search(len(c.Conns), func(i int) bool { return c.Conns[i].V >= v })
	if i < len(c.Conns) && c.Conns[i].V == v {
		return &c.Conns[i]
	}
	return nil
}

// DirectOf returns the sorted 2-hop clusterheads neighbor v covers
// directly (nil when none).
func (c *Coverage) DirectOf(v int) []int {
	if cn := c.Connector(v); cn != nil {
		return cn.Direct
	}
	return nil
}

// RelayFor returns the relay r such that head—v—r—w connects the head to
// 3-hop clusterhead w, if neighbor v reaches w.
func (c *Coverage) RelayFor(v, w int) (int, bool) {
	if cn := c.Connector(v); cn != nil {
		return cn.Relay(w)
	}
	return 0, false
}

// Set returns C(u) = C² ∪ C³ as a fresh bitset.
func (c *Coverage) Set() *graph.Bitset {
	m := c.C2.ToBitset()
	c.C3.AddTo(m)
	return m
}

// Size returns |C(u)|.
func (c *Coverage) Size() int { return c.C2.Count() + c.C3.Count() }

// Builder precomputes, for a clustered network, the per-node neighborhood
// digests (the contents of the CH_HOP1 and CH_HOP2 messages) and serves
// coverage sets for any clusterhead in O(size of the answer).
type Builder struct {
	g    *graph.Graph
	cl   *cluster.Clustering
	mode Mode

	// ch1[v]: sorted clusterheads adjacent to v (the CH_HOP1 content for
	// non-clusterhead v; also defined for clusterheads, where it is empty
	// by the independent-set property). All slices share one backing array.
	ch1 [][]int
	// ch2[v]: for non-clusterhead v, the 2-hop clusterhead entries, sorted
	// by clusterhead ID (w -> lowest-ID relay r with v—r—w per the mode's
	// rule and w not adjacent to v).
	ch2 [][]Hop2Entry

	// Digest backing and scratch, reused across Reset calls so a builder
	// owned by a per-worker workspace re-digests without allocating.
	ch1backing []int
	ch2backing []Hop2Entry
	// asm is the builder-owned assembly scratch used by Reset's CH_HOP2
	// pass and by OfReuse/OfShared. Parallel callers assemble through
	// OfScratch with their own AsmScratch instead.
	asm       AsmScratch
	cnt       []int
	scratch   []Hop2Entry
	sharedCov Coverage

	// Sharded digest state (ResetParallel): the strip partitioner, the
	// per-worker arenas/scratch, and the int32 digest shadow. Untouched by
	// Reset.
	sh     des.Shards
	shards []buildShard
	d32    digest32
}

// AsmScratch is the epoch-stamped mark array one coverage assembly uses:
// mark[w] == e marks membership of w for the current stamp e, so clearing
// between assemblies is a counter bump instead of an O(n/64) bitset clear —
// the difference between an O(m) and an O(n²) digest pass at 10k+ nodes.
//
// The builder embeds one for its serial paths; workers sharding per-head
// assembly across goroutines own one each (see OfScratch).
type AsmScratch struct {
	mark  []uint32
	epoch uint32
}

// ensure sizes the mark array for an n-node universe.
func (s *AsmScratch) ensure(n int) {
	if cap(s.mark) < n {
		s.mark = make([]uint32, n)
		s.epoch = 0
	}
	s.mark = s.mark[:n]
}

// stamps reserves k fresh epoch values and returns the first; on wrap the
// stale stamps are flushed over the full mark capacity first.
func (s *AsmScratch) stamps(k uint32) uint32 {
	if s.epoch > ^uint32(0)-k {
		full := s.mark[:cap(s.mark)]
		for i := range full {
			full[i] = 0
		}
		s.epoch = 0
	}
	base := s.epoch + 1
	s.epoch += k
	return base
}

// NewBuilder digests the clustered network once. The clustering must be
// valid for g.
func NewBuilder(g *graph.Graph, cl *cluster.Clustering, mode Mode) *Builder {
	b := &Builder{}
	b.Reset(g, cl, mode)
	return b
}

// Reset re-digests the builder for a new clustered network, reusing every
// internal buffer. All slices and coverage sets previously served by the
// builder are invalidated.
func (b *Builder) Reset(g *graph.Graph, cl *cluster.Clustering, mode Mode) {
	n := g.N()
	b.g, b.cl, b.mode = g, cl, mode
	if cap(b.ch1) < n {
		b.ch1 = make([][]int, n)
		b.ch2 = make([][]Hop2Entry, n)
	}
	b.ch1 = b.ch1[:n]
	b.ch2 = b.ch2[:n]
	for v := range b.ch2 {
		b.ch2[v] = nil
	}

	// CH_HOP1 digests: ch1[v] is exactly the head-neighbors of v, so the
	// pass iterates the heads and scatters each head into its neighbors'
	// lists (count, prefix-sum, cursor fill) instead of testing IsHead on
	// all 2m neighbor entries — only edges incident to a clusterhead are
	// touched, a ~(k/n)·2m fraction of the graph. Heads come ascending in
	// cl.Heads and each head appears once, so every ch1[v] is sorted and
	// duplicate-free by construction.
	if cap(b.cnt) < n+1 {
		b.cnt = make([]int, n+1)
	}
	cnt := b.cnt[:n+1]
	for i := range cnt {
		cnt[i] = 0
	}
	total := 0
	for _, h := range cl.Heads {
		for _, v := range g.Neighbors(h) {
			cnt[v]++
			total++
		}
	}
	if cap(b.ch1backing) < total {
		b.ch1backing = make([]int, total)
	}
	backing := b.ch1backing[:total]
	// Prefix-sum the counts into start offsets, publish the (still empty)
	// per-node views, then fill with per-node cursors.
	off := 0
	for v := 0; v < n; v++ {
		c := cnt[v]
		b.ch1[v] = backing[off : off+c : off+c]
		cnt[v] = off
		off += c
	}
	for _, h := range cl.Heads {
		for _, v := range g.Neighbors(h) {
			backing[cnt[v]] = h
			cnt[v]++
		}
	}
	b.ch1backing = backing

	// CH_HOP2 digests: collect candidate (w, r) entries into a reusable
	// scratch, sort by (w, r) and keep the lowest-ID relay per w. The
	// deduplicated entries are packed into one growing backing array —
	// earlier slices stay valid across reallocation, and the per-node
	// allocation disappears from this hot constructor.
	b.asm.ensure(n)
	if b.scratch == nil {
		b.scratch = make([]Hop2Entry, 0, 64)
	}
	scratch := b.scratch[:0]
	if cap(b.ch2backing) < n {
		b.ch2backing = make([]Hop2Entry, 0, n)
	}
	ch2backing := b.ch2backing[:0]
	for v := 0; v < n; v++ {
		if cl.IsHead(v) {
			continue
		}
		epoch := b.asm.stamps(1)
		mark := b.asm.mark
		for _, w := range b.ch1[v] {
			mark[w] = epoch
		}
		scratch = scratch[:0]
		for _, r := range g.Neighbors(v) {
			if cl.IsHead(r) {
				continue // CH_HOP1 messages come from non-clusterheads only
			}
			switch mode {
			case Hop25:
				// Only r's own clusterhead generates an entry.
				if w := cl.Head[r]; mark[w] != epoch {
					scratch = append(scratch, Hop2Entry{W: w, R: r})
				}
			case Hop3:
				// Every clusterhead r hears directly generates an entry.
				for _, w := range b.ch1[r] {
					if mark[w] != epoch {
						scratch = append(scratch, Hop2Entry{W: w, R: r})
					}
				}
			}
		}
		if len(scratch) == 0 {
			continue
		}
		sortEntries(scratch)
		start := len(ch2backing)
		for _, e := range scratch {
			if len(ch2backing) > start && ch2backing[len(ch2backing)-1].W == e.W {
				continue // keep the lowest-ID relay ("first entry wins")
			}
			ch2backing = append(ch2backing, e)
		}
		b.ch2[v] = ch2backing[start:len(ch2backing):len(ch2backing)]
	}
	b.scratch = scratch
	b.ch2backing = ch2backing
}

// sortEntries orders CH_HOP2 entries by (W, R). The lists are tiny (one
// entry per 2-hop clusterhead sighting), so a straight insertion sort beats
// the generic sort machinery in the builder's hot loop.
func sortEntries(es []Hop2Entry) {
	for i := 1; i < len(es); i++ {
		e := es[i]
		j := i - 1
		for j >= 0 && (es[j].W > e.W || (es[j].W == e.W && es[j].R > e.R)) {
			es[j+1] = es[j]
			j--
		}
		es[j+1] = e
	}
}

// N returns the number of nodes of the underlying graph (the bitset
// universe of every coverage set the builder serves).
func (b *Builder) N() int { return b.g.N() }

// Mode returns the coverage-area variant of the builder.
func (b *Builder) Mode() Mode { return b.mode }

// CH1 returns the sorted clusterheads adjacent to v (CH_HOP1 content).
// The returned slice is owned by the builder.
func (b *Builder) CH1(v int) []int { return b.ch1[v] }

// CH2Entries returns v's 2-hop clusterhead entries (CH_HOP2 content),
// sorted by clusterhead ID. The returned slice is owned by the builder.
func (b *Builder) CH2Entries(v int) []Hop2Entry { return b.ch2[v] }

// CH2 returns v's CH_HOP2 content as a clusterhead ↦ relay map. It
// materializes a fresh map per call and exists for reporting and tests;
// hot paths use CH2Entries.
func (b *Builder) CH2(v int) map[int]int {
	m := make(map[int]int, len(b.ch2[v]))
	for _, e := range b.ch2[v] {
		m[e.W] = e.R
	}
	return m
}

// Of computes the coverage set of clusterhead u into a fresh Coverage. It
// panics when u is not a clusterhead of the clustering.
func (b *Builder) Of(u int) *Coverage {
	return b.OfReuse(u, &Coverage{})
}

// OfShared computes the coverage set of u into a Coverage owned by the
// builder — the allocation-free path for callers that need one coverage
// set at a time. The result is valid only until the next OfShared or
// Reset call.
func (b *Builder) OfShared(u int) *Coverage {
	return b.OfReuse(u, &b.sharedCov)
}

// OfReuse computes the coverage set of clusterhead u into c, reusing c's
// bitsets and backing arrays. It panics when u is not a clusterhead of the
// clustering.
func (b *Builder) OfReuse(u int, c *Coverage) *Coverage {
	return b.OfScratch(u, c, &b.asm)
}

// OfScratch is OfReuse with caller-provided assembly scratch. After Reset
// the builder's digests are read-only, so OfScratch is safe to call from
// multiple goroutines concurrently as long as each caller passes its own
// c and scr — the sharded per-clusterhead selection path relies on this.
func (b *Builder) OfScratch(u int, c *Coverage, scr *AsmScratch) *Coverage {
	if !b.cl.IsHead(u) {
		panic("coverage: Of called on a non-clusterhead")
	}
	n := b.g.N()
	scr.ensure(n)
	c.Head, c.Mode = u, b.mode
	if c.C2 == nil {
		c.C2, c.C3 = graph.NewHybridSet(n), graph.NewHybridSet(n)
	} else {
		c.C2.Reset(n)
		c.C3.Reset(n)
	}
	c.Conns = c.Conns[:0]
	nbrs := b.g.Neighbors(u)
	// Membership during assembly is tracked in the epoch-stamped mark array
	// (ep2 = "in C²", ep3 = "already in C³"), so the C³ pass filters against
	// C² — and both passes deduplicate their set inserts — with O(1) array
	// probes instead of per-entry set lookups.
	ep2 := scr.stamps(2)
	ep3 := ep2 + 1
	mark := scr.mark
	// C² first (from neighbors' CH_HOP1), because the C³ pass must filter
	// against the complete C². Per-neighbor lists are packed into shared
	// backing arrays addressed by offsets — no per-neighbor allocations.
	if cap(c.dirOff) < len(nbrs)+1 {
		c.dirOff = make([]int, len(nbrs)+1)
		c.indOff = make([]int, len(nbrs)+1)
	}
	dirOff := c.dirOff[:len(nbrs)+1]
	dirOff[0] = 0
	direct := c.direct[:0]
	for i, v := range nbrs {
		for _, w := range b.ch1[v] {
			if w == u {
				continue
			}
			if mark[w] != ep2 {
				mark[w] = ep2
				c.C2.Add(w)
			}
			direct = append(direct, w)
		}
		dirOff[i+1] = len(direct)
	}
	// C³: from neighbors' CH_HOP2, removing C² duplicates.
	indOff := c.indOff[:len(nbrs)+1]
	indOff[0] = 0
	indirect := c.indirect[:0]
	for i, v := range nbrs {
		for _, e := range b.ch2[v] {
			if e.W == u || mark[e.W] == ep2 {
				continue
			}
			if mark[e.W] != ep3 {
				mark[e.W] = ep3
				c.C3.Add(e.W)
			}
			indirect = append(indirect, e)
		}
		indOff[i+1] = len(indirect)
	}
	c.direct, c.indirect = direct, indirect
	for i, v := range nbrs {
		d := direct[dirOff[i]:dirOff[i+1]:dirOff[i+1]]
		in := indirect[indOff[i]:indOff[i+1]:indOff[i+1]]
		if len(d) == 0 && len(in) == 0 {
			continue
		}
		c.Conns = append(c.Conns, Connector{V: v, Direct: d, Indirect: in})
	}
	return c
}

// All computes coverage sets for every clusterhead, keyed by head ID.
func (b *Builder) All() map[int]*Coverage {
	out := make(map[int]*Coverage, len(b.cl.Heads))
	for _, h := range b.cl.Heads {
		out[h] = b.Of(h)
	}
	return out
}

// ClusterGraph builds the paper's cluster graph G′: one vertex per cluster
// (indexed 0..k−1 in ascending head order), and a directed edge (v, w)
// whenever clusterhead w belongs to v's coverage set. The returned index
// maps head ID to vertex index.
func ClusterGraph(b *Builder) (*graph.Digraph, map[int]int) {
	heads := b.cl.Heads
	index := make(map[int]int, len(heads))
	for i, h := range heads {
		index[h] = i
	}
	d := graph.NewDigraph(len(heads))
	for _, h := range heads {
		cov := b.Of(h)
		cov.C2.ForEach(func(w int) { d.AddEdge(index[h], index[w]) })
		cov.C3.ForEach(func(w int) { d.AddEdge(index[h], index[w]) })
	}
	return d, index
}
