// Package coverage computes clusterhead coverage sets, the paper's central
// data structure.
//
// A clusterhead u's coverage set C(u) = C²(u) ∪ C³(u) consists of the
// clusterheads u must connect to through selected gateways:
//
//   - C²(u): clusterheads exactly 2 hops from u (always included),
//   - C³(u): clusterheads 3 hops from u, where the two coverage-area
//     variants differ:
//
// With the 3-hop coverage set, C³(u) holds every clusterhead exactly 3 hops
// away. With the cheaper 2.5-hop coverage set, C³(u) only holds
// clusterheads w that have a *cluster member* within N²(u) — exactly the
// information the CH_HOP1/CH_HOP2 message exchange of the paper gathers:
// CH_HOP1(v) carries v's 1-hop neighboring clusterheads, and CH_HOP2(v)
// carries v's 2-hop clusterhead entries "w[r]" (w reachable via relay r,
// where — in the 2.5-hop variant — r is a member of w's cluster).
//
// Alongside the sets themselves the package records the connector
// bookkeeping the gateway selection needs: which neighbor v of u directly
// covers which 2-hop clusterheads (w ∈ CH_HOP1(v)) and which (v, r) pair
// reaches which 3-hop clusterhead (w[r] ∈ CH_HOP2(v)).
package coverage

import (
	"sort"

	"clustercast/internal/cluster"
	"clustercast/internal/graph"
)

// Mode selects the coverage-area variant.
type Mode uint8

const (
	// Hop25 is the 2.5-hop coverage set: C³ restricted to clusterheads
	// with a member in N²(u). Cheaper to maintain; the cluster graph may be
	// genuinely directed.
	Hop25 Mode = iota
	// Hop3 is the full 3-hop coverage set: C³ holds every clusterhead at
	// distance exactly 3. The cluster graph is symmetric.
	Hop3
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Hop25:
		return "2.5-hop"
	case Hop3:
		return "3-hop"
	default:
		return "unknown"
	}
}

// Coverage is the coverage set of one clusterhead together with the
// connector bookkeeping used by gateway selection.
type Coverage struct {
	Head int
	Mode Mode

	// C2 and C3 are the 2-hop and 3-hop components of the coverage set.
	// They are disjoint: a clusterhead in both is kept only in C2.
	C2 map[int]bool
	C3 map[int]bool

	// Direct[v] lists, sorted, the clusterheads of C2 that neighbor v of
	// the head covers directly (v is adjacent to them).
	Direct map[int][]int

	// Indirect[v] maps a 3-hop clusterhead w ∈ C3 to the relay r such that
	// head—v—r—w is a connecting path (r chosen as the lowest-ID relay,
	// mirroring the "first entry wins" rule of the CH_HOP2 construction).
	Indirect map[int]map[int]int
}

// Set returns C(u) = C² ∪ C³ as a fresh membership map.
func (c *Coverage) Set() map[int]bool {
	m := make(map[int]bool, len(c.C2)+len(c.C3))
	for w := range c.C2 {
		m[w] = true
	}
	for w := range c.C3 {
		m[w] = true
	}
	return m
}

// Size returns |C(u)|.
func (c *Coverage) Size() int { return len(c.C2) + len(c.C3) }

// Builder precomputes, for a clustered network, the per-node neighborhood
// digests (the contents of the CH_HOP1 and CH_HOP2 messages) and serves
// coverage sets for any clusterhead in O(size of the answer).
type Builder struct {
	g    *graph.Graph
	cl   *cluster.Clustering
	mode Mode

	// ch1[v]: sorted clusterheads adjacent to v (the CH_HOP1 content for
	// non-clusterhead v; also defined for clusterheads, where it is empty
	// by the independent-set property).
	ch1 [][]int
	// ch2[v]: for non-clusterhead v, the 2-hop clusterhead entries
	// (w -> lowest-ID relay r with v—r—w per the mode's rule and w not
	// adjacent to v).
	ch2 []map[int]int
}

// NewBuilder digests the clustered network once. The clustering must be
// valid for g.
func NewBuilder(g *graph.Graph, cl *cluster.Clustering, mode Mode) *Builder {
	n := g.N()
	b := &Builder{g: g, cl: cl, mode: mode, ch1: make([][]int, n), ch2: make([]map[int]int, n)}
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(v) {
			if cl.IsHead(u) {
				b.ch1[v] = append(b.ch1[v], u)
			}
		}
		sort.Ints(b.ch1[v])
	}
	for v := 0; v < n; v++ {
		if cl.IsHead(v) {
			continue
		}
		entries := make(map[int]int)
		adjacent := make(map[int]bool, len(b.ch1[v]))
		for _, w := range b.ch1[v] {
			adjacent[w] = true
		}
		for _, r := range g.Neighbors(v) {
			if cl.IsHead(r) {
				continue // CH_HOP1 messages come from non-clusterheads only
			}
			switch mode {
			case Hop25:
				// Only r's own clusterhead generates an entry.
				w := cl.Head[r]
				if !adjacent[w] {
					if prev, ok := entries[w]; !ok || r < prev {
						entries[w] = r
					}
				}
			case Hop3:
				// Every clusterhead r hears directly generates an entry.
				for _, w := range b.ch1[r] {
					if !adjacent[w] {
						if prev, ok := entries[w]; !ok || r < prev {
							entries[w] = r
						}
					}
				}
			}
		}
		b.ch2[v] = entries
	}
	return b
}

// Mode returns the coverage-area variant of the builder.
func (b *Builder) Mode() Mode { return b.mode }

// CH1 returns the sorted clusterheads adjacent to v (CH_HOP1 content).
// The returned slice is owned by the builder.
func (b *Builder) CH1(v int) []int { return b.ch1[v] }

// CH2 returns v's 2-hop clusterhead entries (CH_HOP2 content): clusterhead
// w ↦ relay r. The returned map is owned by the builder.
func (b *Builder) CH2(v int) map[int]int { return b.ch2[v] }

// Of computes the coverage set of clusterhead u. It panics when u is not a
// clusterhead of the clustering.
func (b *Builder) Of(u int) *Coverage {
	if !b.cl.IsHead(u) {
		panic("coverage: Of called on a non-clusterhead")
	}
	c := &Coverage{
		Head: u, Mode: b.mode,
		C2: make(map[int]bool), C3: make(map[int]bool),
		Direct: make(map[int][]int), Indirect: make(map[int]map[int]int),
	}
	// C², Direct: from neighbors' CH_HOP1.
	for _, v := range b.g.Neighbors(u) {
		var direct []int
		for _, w := range b.ch1[v] {
			if w == u {
				continue
			}
			c.C2[w] = true
			direct = append(direct, w)
		}
		if len(direct) > 0 {
			c.Direct[v] = direct
		}
	}
	// C³, Indirect: from neighbors' CH_HOP2, removing C² duplicates.
	for _, v := range b.g.Neighbors(u) {
		var ind map[int]int
		for w, r := range b.ch2[v] {
			if w == u || c.C2[w] {
				continue
			}
			c.C3[w] = true
			if ind == nil {
				ind = make(map[int]int)
			}
			ind[w] = r
		}
		if ind != nil {
			c.Indirect[v] = ind
		}
	}
	return c
}

// All computes coverage sets for every clusterhead, keyed by head ID.
func (b *Builder) All() map[int]*Coverage {
	out := make(map[int]*Coverage, len(b.cl.Heads))
	for _, h := range b.cl.Heads {
		out[h] = b.Of(h)
	}
	return out
}

// ClusterGraph builds the paper's cluster graph G′: one vertex per cluster
// (indexed 0..k−1 in ascending head order), and a directed edge (v, w)
// whenever clusterhead w belongs to v's coverage set. The returned index
// maps head ID to vertex index.
func ClusterGraph(b *Builder) (*graph.Digraph, map[int]int) {
	heads := b.cl.Heads
	index := make(map[int]int, len(heads))
	for i, h := range heads {
		index[h] = i
	}
	d := graph.NewDigraph(len(heads))
	for _, h := range heads {
		cov := b.Of(h)
		for w := range cov.C2 {
			d.AddEdge(index[h], index[w])
		}
		for w := range cov.C3 {
			d.AddEdge(index[h], index[w])
		}
	}
	return d, index
}
