package coverage

import (
	"reflect"
	"testing"
	"testing/quick"

	"clustercast/internal/cluster"
	"clustercast/internal/geom"
	"clustercast/internal/graph"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

// paperGraph builds the 10-node network of the paper's Figure 3, 0-based
// (paper node k ↦ k−1). Edges are taken from the figure's walk-through.
func paperGraph() *graph.Graph {
	edges := [][2]int{
		{1, 5}, {1, 6}, {1, 7}, {2, 6}, {2, 8},
		{3, 7}, {3, 8}, {3, 9}, {3, 10}, {4, 9}, {4, 10}, {5, 9},
	}
	zero := make([][2]int, len(edges))
	for i, e := range edges {
		zero[i] = [2]int{e[0] - 1, e[1] - 1}
	}
	return graph.FromEdges(10, zero)
}

func paperSetup(t *testing.T, mode Mode) (*graph.Graph, *cluster.Clustering, *Builder) {
	t.Helper()
	g := paperGraph()
	cl := cluster.LowestID(g)
	if err := cl.Validate(g); err != nil {
		t.Fatal(err)
	}
	return g, cl, NewBuilder(g, cl, mode)
}

// keys returns the sorted members of a set (nil when empty, for easy
// reflect.DeepEqual comparisons). It accepts any of the graph set
// representations (Bitset, SparseSet, HybridSet).
func keys(b interface{ Members() []int }) []int {
	out := b.Members()
	if len(out) == 0 {
		return nil
	}
	return out
}

func TestCH1MatchesPaperMessages(t *testing.T) {
	_, _, b := paperSetup(t, Hop25)
	// Paper: CH_HOP1(9)={3*,4}, CH_HOP1(5)={1*}, CH_HOP1(6)={1*,2},
	// CH_HOP1(7)={1*,3}, CH_HOP1(8)={2*,3}, CH_HOP1(10)={3*,4}.
	want := map[int][]int{
		8: {2, 3}, // paper node 9
		4: {0},    // paper node 5
		5: {0, 1}, // paper node 6
		6: {0, 2}, // paper node 7
		7: {1, 2}, // paper node 8
		9: {2, 3}, // paper node 10
	}
	for v, w := range want {
		if got := b.CH1(v); !reflect.DeepEqual(got, w) {
			t.Errorf("CH1(%d) = %v, want %v (paper node %d)", v, got, w, v+1)
		}
	}
}

func TestCH2MatchesPaperMessages(t *testing.T) {
	_, _, b := paperSetup(t, Hop25)
	// Paper: CH_HOP2(9) = {1[5]} — clusterhead 1 via relay 5.
	if got := b.CH2(8); !reflect.DeepEqual(got, map[int]int{0: 4}) {
		t.Errorf("CH2(9) = %v, want {1[5]} (0-based {0:4})", got)
	}
	// Paper: CH_HOP2(5) = {3[9]}.
	if got := b.CH2(4); !reflect.DeepEqual(got, map[int]int{2: 8}) {
		t.Errorf("CH2(5) = %v, want {3[9]} (0-based {2:8})", got)
	}
	// Paper note: node 4 is NOT in node 5's 2-hop clusterhead set under the
	// 2.5-hop rule (only relays' own clusterheads count).
	if _, ok := b.CH2(4)[3]; ok {
		t.Error("2.5-hop CH2(5) must not contain clusterhead 4")
	}
}

func TestCH2Hop3IncludesNonMemberRelays(t *testing.T) {
	_, _, b := paperSetup(t, Hop3)
	// Under the 3-hop rule node 5 also reports clusterhead 4 via 9
	// (9 is adjacent to 4 even though 9 is not a member of 4's cluster).
	got := b.CH2(4)
	if !reflect.DeepEqual(got, map[int]int{2: 8, 3: 8}) {
		t.Errorf("3-hop CH2(5) = %v, want {2:8, 3:8}", got)
	}
}

func TestPaperCoverageSets25(t *testing.T) {
	_, _, b := paperSetup(t, Hop25)
	// Paper (1-based): C(1)=C²(1)={2,3}; C(2)=C²(2)={1,3};
	// C(3)=C²(3)={1,2,4}; C(4)=C²(4)∪C³(4)={3}∪{1}.
	cases := []struct {
		head   int
		c2, c3 []int
	}{
		{0, []int{1, 2}, nil},
		{1, []int{0, 2}, nil},
		{2, []int{0, 1, 3}, nil},
		{3, []int{2}, []int{0}},
	}
	for _, c := range cases {
		cov := b.Of(c.head)
		if got := keys(cov.C2); !reflect.DeepEqual(got, c.c2) {
			t.Errorf("C²(%d) = %v, want %v", c.head+1, got, c.c2)
		}
		if got := keys(cov.C3); !reflect.DeepEqual(got, c.c3) {
			t.Errorf("C³(%d) = %v, want %v", c.head+1, got, c.c3)
		}
	}
}

func TestPaperCoverageSets3Hop(t *testing.T) {
	_, _, b := paperSetup(t, Hop3)
	// With the 3-hop rule, 4 ∈ C³(1) (path 1-5-9-4) and the cluster graph
	// becomes symmetric (Figure 4(b)).
	cov := b.Of(0)
	if got := keys(cov.C3); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("3-hop C³(1) = %v, want {4} (0-based {3})", got)
	}
}

func TestPaperIndirectConnectors(t *testing.T) {
	_, _, b := paperSetup(t, Hop25)
	// C³(4) = {1} reached via pair (9, 5): head 4 — 9 — 5 — 1.
	cov := b.Of(3)
	cn := cov.Connector(8)
	if cn == nil || len(cn.Indirect) == 0 {
		t.Fatalf("head 4 should have indirect coverage via node 9; got %v", cov.Conns)
	}
	if r, ok := cov.RelayFor(8, 0); !ok || r != 4 {
		t.Fatalf("head 4 should reach clusterhead 1 via relay 5 (0-based 4), got %v", cn.Indirect)
	}
}

func TestPaperDirectConnectors(t *testing.T) {
	_, _, b := paperSetup(t, Hop25)
	cov := b.Of(0) // paper clusterhead 1
	// Neighbor 6 covers {2}, neighbor 7 covers {3}, neighbor 5 covers none.
	if got := cov.DirectOf(5); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("Direct via node 6 = %v, want {2} (0-based {1})", got)
	}
	if got := cov.DirectOf(6); !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("Direct via node 7 = %v, want {3} (0-based {2})", got)
	}
	if got := cov.DirectOf(4); len(got) != 0 {
		t.Errorf("node 5 directly covers no 2-hop clusterhead of head 1")
	}
}

func TestClusterGraphPaperFigure4(t *testing.T) {
	// Figure 4(a): 2.5-hop cluster graph has 4→1 but not 1→4.
	_, _, b25 := paperSetup(t, Hop25)
	d, idx := ClusterGraph(b25)
	if !d.HasEdge(idx[3], idx[0]) {
		t.Error("2.5-hop cluster graph must contain edge 4→1")
	}
	if d.HasEdge(idx[0], idx[3]) {
		t.Error("2.5-hop cluster graph must NOT contain edge 1→4")
	}
	if !d.StronglyConnected() {
		t.Error("2.5-hop cluster graph must be strongly connected (Theorem 1)")
	}

	// Figure 4(b): 3-hop cluster graph is symmetric.
	_, _, b3 := paperSetup(t, Hop3)
	d3, idx3 := ClusterGraph(b3)
	if !d3.HasEdge(idx3[0], idx3[3]) || !d3.HasEdge(idx3[3], idx3[0]) {
		t.Error("3-hop cluster graph must contain both 1→4 and 4→1")
	}
	for u := 0; u < d3.N(); u++ {
		for _, v := range d3.Out(u) {
			if !d3.HasEdge(v, u) {
				t.Fatalf("3-hop cluster graph must be symmetric; (%d,%d) one-way", u, v)
			}
		}
	}
}

func TestCoverageSetAndSize(t *testing.T) {
	_, _, b := paperSetup(t, Hop25)
	cov := b.Of(3)
	if cov.Size() != 2 {
		t.Fatalf("Size = %d, want 2", cov.Size())
	}
	if got := keys(cov.Set()); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Fatalf("Set = %v, want [0 2]", got)
	}
}

func TestOfPanicsOnNonHead(t *testing.T) {
	_, _, b := paperSetup(t, Hop25)
	defer func() {
		if recover() == nil {
			t.Fatal("Of(non-head) must panic")
		}
	}()
	b.Of(5)
}

func TestAllCoversAllHeads(t *testing.T) {
	_, cl, b := paperSetup(t, Hop25)
	all := b.All()
	if len(all) != len(cl.Heads) {
		t.Fatalf("All returned %d coverages for %d heads", len(all), len(cl.Heads))
	}
	for _, h := range cl.Heads {
		if all[h] == nil || all[h].Head != h {
			t.Fatalf("missing/incorrect coverage for head %d", h)
		}
	}
}

// randomClustered draws a random connected clustered network.
func randomClustered(seed uint64, n int, deg float64) (*graph.Graph, *cluster.Clustering, bool) {
	r := rng.New(seed)
	nw, err := topology.Generate(topology.Config{
		N: n, Bounds: geom.Square(100), AvgDegree: deg, RequireConnected: true, MaxAttempts: 200,
	}, r)
	if err != nil {
		return nil, nil, false
	}
	return nw.G, cluster.LowestID(nw.G), true
}

// Property: C² holds exactly the clusterheads at BFS distance 2; C³ only
// clusterheads at distance 3 (2.5-hop: a subset; 3-hop: all of them).
func TestQuickCoverageDistances(t *testing.T) {
	check := func(seed uint64, mode Mode) bool {
		g, cl, ok := randomClustered(seed, 35, 7)
		if !ok {
			return true // skip rare generation failure
		}
		b := NewBuilder(g, cl, mode)
		for _, h := range cl.Heads {
			dist := g.BFS(h)
			cov := b.Of(h)
			// C² = heads at distance exactly 2.
			for _, w := range cl.Heads {
				if w == h {
					continue
				}
				if cov.C2.Has(w) != (dist[w] == 2) {
					return false
				}
			}
			for _, w := range cov.C3.Members() {
				if dist[w] != 3 || !cl.IsHead(w) {
					return false
				}
			}
			if mode == Hop3 {
				for _, w := range cl.Heads {
					if dist[w] == 3 && !cov.C3.Has(w) {
						return false
					}
				}
			} else {
				// 2.5-hop: w ∈ C³ iff some member of w's cluster is within
				// N²(h) and w is at distance 3.
				inN2 := map[int]bool{}
				for _, x := range g.KHop(h, 2) {
					inN2[x] = true
				}
				for _, w := range cl.Heads {
					if dist[w] != 3 {
						continue
					}
					hasMember := false
					for _, m := range cl.Members[w] {
						if m != w && inN2[m] {
							hasMember = true
							break
						}
					}
					if cov.C3.Has(w) != hasMember {
						return false
					}
				}
			}
		}
		return true
	}
	f25 := func(seed uint64) bool { return check(seed, Hop25) }
	f3 := func(seed uint64) bool { return check(seed, Hop3) }
	if err := quick.Check(f25, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatalf("2.5-hop: %v", err)
	}
	if err := quick.Check(f3, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatalf("3-hop: %v", err)
	}
}

// Property: the connector bookkeeping is sound — Direct connectors are
// adjacent to both the head and the covered clusterhead; Indirect pairs
// form real paths head—v—r—w; and under 2.5-hop the relay r is a member of
// w's cluster.
func TestQuickConnectorsAreSound(t *testing.T) {
	check := func(seed uint64, mode Mode) bool {
		g, cl, ok := randomClustered(seed, 35, 7)
		if !ok {
			return true
		}
		b := NewBuilder(g, cl, mode)
		for _, h := range cl.Heads {
			cov := b.Of(h)
			for _, cn := range cov.Conns {
				if !g.HasEdge(h, cn.V) {
					return false
				}
				for _, w := range cn.Direct {
					if !g.HasEdge(cn.V, w) || !cov.C2.Has(w) {
						return false
					}
				}
				for _, e := range cn.Indirect {
					if !g.HasEdge(cn.V, e.R) || !g.HasEdge(e.R, e.W) || !cov.C3.Has(e.W) {
						return false
					}
					if mode == Hop25 && cl.Head[e.R] != e.W {
						return false
					}
				}
			}
		}
		return true
	}
	f25 := func(seed uint64) bool { return check(seed, Hop25) }
	f3 := func(seed uint64) bool { return check(seed, Hop3) }
	if err := quick.Check(f25, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatalf("2.5-hop: %v", err)
	}
	if err := quick.Check(f3, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatalf("3-hop: %v", err)
	}
}

// Property (Theorem 1 prerequisite, proved in [Wu & Lou 2003]): the cluster
// graph generated with either coverage set over a connected network is
// strongly connected.
func TestQuickClusterGraphStronglyConnected(t *testing.T) {
	check := func(seed uint64, mode Mode) bool {
		g, cl, ok := randomClustered(seed, 40, 6)
		if !ok {
			return true
		}
		b := NewBuilder(g, cl, mode)
		d, _ := ClusterGraph(b)
		return d.StronglyConnected()
	}
	f25 := func(seed uint64) bool { return check(seed, Hop25) }
	f3 := func(seed uint64) bool { return check(seed, Hop3) }
	if err := quick.Check(f25, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatalf("2.5-hop: %v", err)
	}
	if err := quick.Check(f3, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatalf("3-hop: %v", err)
	}
}

// Property: C³ under 2.5-hop is a subset of C³ under 3-hop, and C² is
// identical across modes.
func TestQuickModeContainment(t *testing.T) {
	f := func(seed uint64) bool {
		g, cl, ok := randomClustered(seed, 35, 7)
		if !ok {
			return true
		}
		b25 := NewBuilder(g, cl, Hop25)
		b3 := NewBuilder(g, cl, Hop3)
		for _, h := range cl.Heads {
			c25, c3 := b25.Of(h), b3.Of(h)
			if !reflect.DeepEqual(keys(c25.C2), keys(c3.C2)) {
				return false
			}
			for _, w := range c25.C3.Members() {
				if !c3.C3.Has(w) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestModeString(t *testing.T) {
	if Hop25.String() != "2.5-hop" || Hop3.String() != "3-hop" {
		t.Fatal("Mode.String wrong")
	}
	if Mode(9).String() != "unknown" {
		t.Fatal("unknown mode string wrong")
	}
}

func BenchmarkBuilder100(b *testing.B) {
	r := rng.New(1)
	nw, err := topology.Generate(topology.Config{
		N: 100, Bounds: geom.Square(100), AvgDegree: 18, RequireConnected: true,
	}, r)
	if err != nil {
		b.Fatal(err)
	}
	cl := cluster.LowestID(nw.G)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bb := NewBuilder(nw.G, cl, Hop25)
		_ = bb.All()
	}
}
