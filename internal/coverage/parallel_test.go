package coverage

import (
	"reflect"
	"testing"

	"clustercast/internal/cluster"
	"clustercast/internal/geom"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

// requireSameDigest asserts ResetParallel reproduced Reset's digests bit
// for bit: every CH1 view and every CH2 entry list, per node.
func requireSameDigest(t *testing.T, want, got *Builder, n int, ctx string) {
	t.Helper()
	for v := 0; v < n; v++ {
		if !reflect.DeepEqual(want.CH1(v), got.CH1(v)) {
			t.Fatalf("%s: CH1(%d) differs\nwant %v\ngot  %v", ctx, v, want.CH1(v), got.CH1(v))
		}
		w, g := want.CH2Entries(v), got.CH2Entries(v)
		if len(w) != len(g) {
			t.Fatalf("%s: CH2(%d) length %d != %d\nwant %v\ngot  %v", ctx, v, len(g), len(w), w, g)
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("%s: CH2(%d) differs\nwant %v\ngot  %v", ctx, v, w, g)
			}
		}
	}
}

// The sharded digest matches Reset bit for bit across worker counts,
// modes, densities and seeds, with builder reuse between configurations.
func TestResetParallelEquivalence(t *testing.T) {
	var ref, par Builder
	cws := cluster.NewWorkspace()
	for _, tc := range []struct {
		n    int
		deg  float64
		seed uint64
	}{
		{1, 1, 7}, {2, 1, 7}, {40, 4, 1}, {200, 8, 2}, {500, 18, 3}, {1000, 30, 4},
	} {
		r := rng.New(tc.seed)
		nw, err := topology.Generate(topology.Config{
			N: tc.n, Bounds: geom.Square(100), AvgDegree: tc.deg,
		}, r)
		if err != nil {
			t.Fatal(err)
		}
		cl := cws.LowestID(nw.G)
		for _, mode := range []Mode{Hop25, Hop3} {
			ref.Reset(nw.G, cl, mode)
			for _, workers := range []int{1, 2, 3, 4, 8, 16} {
				par.ResetParallel(nw.G, cl, mode, workers)
				requireSameDigest(t, &ref, &par, tc.n, mode.String())
			}
		}
	}
}

// A builder digested by ResetParallel serves the same coverage sets as a
// Reset one — the assembly paths downstream of the digests see identical
// inputs.
func TestResetParallelCoverageAgrees(t *testing.T) {
	r := rng.New(11)
	nw, err := topology.Generate(topology.Config{
		N: 600, Bounds: geom.Square(100), AvgDegree: 14,
	}, r)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.NewWorkspace().LowestID(nw.G)
	var ref, par Builder
	for _, mode := range []Mode{Hop25, Hop3} {
		ref.Reset(nw.G, cl, mode)
		par.ResetParallel(nw.G, cl, mode, 4)
		var scrA, scrB AsmScratch
		var cw, cg Coverage
		for _, h := range cl.Heads {
			ref.OfScratch(h, &cw, &scrA)
			par.OfScratch(h, &cg, &scrB)
			if !cw.C2.Equal(cg.C2) || !cw.C3.Equal(cg.C3) {
				t.Fatalf("%v: coverage sets of head %d differ", mode, h)
			}
			if len(cw.Conns) != len(cg.Conns) {
				t.Fatalf("%v: head %d: %d connectors != %d", mode, h, len(cg.Conns), len(cw.Conns))
			}
			for i := range cw.Conns {
				a, b := &cw.Conns[i], &cg.Conns[i]
				if a.V != b.V || !reflect.DeepEqual(a.Direct, b.Direct) || !reflect.DeepEqual(a.Indirect, b.Indirect) {
					t.Fatalf("%v: head %d connector %d differs", mode, h, i)
				}
			}
		}
	}
}

// Fuzz: sharded digest vs Reset across (n, density, seed, workers, mode).
func FuzzResetParallelAgree(f *testing.F) {
	f.Add(uint(50), uint(8), uint64(1), uint(4))
	f.Add(uint(200), uint(16), uint64(9), uint(16))
	f.Add(uint(3), uint(1), uint64(3), uint(2))
	var ref, par Builder
	cws := cluster.NewWorkspace()
	f.Fuzz(func(t *testing.T, n, deg uint, seed uint64, workers uint) {
		n = 1 + n%300
		deg = deg % 24
		workers = 1 + workers%16
		r := rng.New(seed)
		nw, err := topology.Generate(topology.Config{
			N: int(n), Bounds: geom.Square(100), AvgDegree: float64(deg),
		}, r)
		if err != nil {
			t.Skip()
		}
		cl := cws.LowestID(nw.G)
		for _, mode := range []Mode{Hop25, Hop3} {
			ref.Reset(nw.G, cl, mode)
			par.ResetParallel(nw.G, cl, mode, int(workers))
			requireSameDigest(t, &ref, &par, int(n), mode.String())
		}
	})
}

func benchmarkDigest(b *testing.B, n int, mode Mode, parallel bool, workers int) {
	r := rng.New(1)
	nw, err := topology.Generate(topology.Config{
		N: n, Bounds: geom.Square(100), AvgDegree: 18, RequireConnected: true,
	}, r)
	if err != nil {
		b.Fatal(err)
	}
	cl := cluster.NewWorkspace().LowestID(nw.G)
	var bld Builder
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if parallel {
			bld.ResetParallel(nw.G, cl, mode, workers)
		} else {
			bld.Reset(nw.G, cl, mode)
		}
	}
}

func BenchmarkShardedCoverage(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		if n > 10000 && testing.Short() {
			continue
		}
		for _, m := range []Mode{Hop25, Hop3} {
			prefix := "n=" + itoa(n) + "/" + m.String() + "-"
			b.Run(prefix+"reference", func(b *testing.B) { benchmarkDigest(b, n, m, false, 1) })
			b.Run(prefix+"sharded-w1", func(b *testing.B) { benchmarkDigest(b, n, m, true, 1) })
			b.Run(prefix+"sharded-w8", func(b *testing.B) { benchmarkDigest(b, n, m, true, 8) })
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
