// Benchmarks: one per paper table/figure plus the ablations DESIGN.md
// calls out. Each benchmark regenerates the figure's measurement at a
// representative operating point (n=100, both paper densities) and reports
// the measured quantity as a custom metric, so `go test -bench=.`
// doubles as a smoke reproduction:
//
//	BenchmarkFig6 — average CDS size (static 2.5/3-hop vs MO_CDS)
//	BenchmarkFig7 — forward-node set (dynamic vs MO_CDS)
//	BenchmarkFig8 — forward-node set (static vs dynamic)
//	BenchmarkApproxRatio / BenchmarkMessageComplexity /
//	BenchmarkBaselines / BenchmarkTieBreak / BenchmarkMobility — ablations
//
// The full replicated sweeps (99% CI within ±5%, n = 20..100) are produced
// by `go run ./cmd/figures`.
package clustercast_test

import (
	"fmt"
	"testing"

	"clustercast/internal/backbone"
	"clustercast/internal/broadcast"
	"clustercast/internal/cluster"
	"clustercast/internal/core"
	"clustercast/internal/coverage"
	"clustercast/internal/experiment"
	"clustercast/internal/faults"
	"clustercast/internal/fwdtree"
	"clustercast/internal/geom"
	"clustercast/internal/graph"
	"clustercast/internal/hier"
	"clustercast/internal/marking"
	"clustercast/internal/mcds"
	"clustercast/internal/mocds"
	"clustercast/internal/passive"
	"clustercast/internal/reliable"
	"clustercast/internal/rng"
	"clustercast/internal/routing"
	"clustercast/internal/sim"
	"clustercast/internal/topology"
	"clustercast/internal/workload"
)

// sample draws the i-th replicate network for a bench scenario.
func sample(b *testing.B, n int, d float64, i int) *core.Network {
	b.Helper()
	nw, err := core.NewRandomNetwork(core.NetworkSpec{
		N: n, AvgDegree: d, Seed: uint64(i)*0x9E3779B97F4A7C15 + uint64(d),
	})
	if err != nil {
		b.Fatal(err)
	}
	return nw
}

// BenchmarkFig6 regenerates Figure 6's measurement: the average CDS size
// of the static backbone (2.5-hop, 3-hop) and the MO_CDS at n=100.
func BenchmarkFig6(b *testing.B) {
	for _, d := range []float64{6, 18} {
		for _, alg := range []string{"static-2.5hop", "static-3hop", "mo-cds"} {
			b.Run(fmt.Sprintf("d=%g/%s", d, alg), func(b *testing.B) {
				total := 0
				for i := 0; i < b.N; i++ {
					nw := sample(b, 100, d, i)
					switch alg {
					case "static-2.5hop":
						total += nw.StaticBackbone(core.Hop25).Size()
					case "static-3hop":
						total += nw.StaticBackbone(core.Hop3).Size()
					case "mo-cds":
						total += nw.MOCDS().Size()
					}
				}
				b.ReportMetric(float64(total)/float64(b.N), "cds-size")
			})
		}
	}
}

// BenchmarkFig7 regenerates Figure 7's measurement: the forward-node-set
// size of a dynamic-backbone broadcast vs a broadcast over the MO_CDS.
func BenchmarkFig7(b *testing.B) {
	for _, d := range []float64{6, 18} {
		for _, alg := range []string{"dynamic-2.5hop", "dynamic-3hop", "mo-cds"} {
			b.Run(fmt.Sprintf("d=%g/%s", d, alg), func(b *testing.B) {
				src := rng.NewLabeled(7, "fig7")
				total := 0
				for i := 0; i < b.N; i++ {
					nw := sample(b, 100, d, i)
					s := src.Intn(nw.N())
					switch alg {
					case "dynamic-2.5hop":
						total += nw.DynamicBroadcast(core.Hop25, s).ForwardCount()
					case "dynamic-3hop":
						total += nw.DynamicBroadcast(core.Hop3, s).ForwardCount()
					case "mo-cds":
						total += nw.BroadcastMOCDS(nw.MOCDS(), s).ForwardCount()
					}
				}
				b.ReportMetric(float64(total)/float64(b.N), "fwd-nodes")
			})
		}
	}
}

// BenchmarkFig8 regenerates Figure 8's measurement: forward nodes of the
// static vs the dynamic backbone.
func BenchmarkFig8(b *testing.B) {
	for _, d := range []float64{6, 18} {
		for _, alg := range []string{"static-2.5hop", "static-3hop", "dynamic-2.5hop", "dynamic-3hop"} {
			b.Run(fmt.Sprintf("d=%g/%s", d, alg), func(b *testing.B) {
				src := rng.NewLabeled(8, "fig8")
				total := 0
				for i := 0; i < b.N; i++ {
					nw := sample(b, 100, d, i)
					s := src.Intn(nw.N())
					switch alg {
					case "static-2.5hop":
						total += nw.BroadcastStatic(nw.StaticBackbone(core.Hop25), s).ForwardCount()
					case "static-3hop":
						total += nw.BroadcastStatic(nw.StaticBackbone(core.Hop3), s).ForwardCount()
					case "dynamic-2.5hop":
						total += nw.DynamicBroadcast(core.Hop25, s).ForwardCount()
					case "dynamic-3hop":
						total += nw.DynamicBroadcast(core.Hop3, s).ForwardCount()
					}
				}
				b.ReportMetric(float64(total)/float64(b.N), "fwd-nodes")
			})
		}
	}
}

// BenchmarkApproxRatio regenerates ABL-RATIO: the empirical approximation
// ratio to the exact MCDS on small networks.
func BenchmarkApproxRatio(b *testing.B) {
	for _, alg := range []string{"static-2.5hop", "mo-cds", "greedy-gk"} {
		b.Run(alg, func(b *testing.B) {
			sum, count := 0.0, 0
			for i := 0; i < b.N; i++ {
				nw := sample(b, 16, 5, i)
				opt := mcds.Exact(nw.Graph())
				if len(opt) == 0 {
					continue
				}
				var size int
				switch alg {
				case "static-2.5hop":
					size = nw.StaticBackbone(core.Hop25).Size()
				case "mo-cds":
					size = nw.MOCDS().Size()
				case "greedy-gk":
					size = len(mcds.Greedy(nw.Graph()))
				}
				sum += float64(size) / float64(len(opt))
				count++
			}
			if count > 0 {
				b.ReportMetric(sum/float64(count), "ratio")
			}
		})
	}
}

// BenchmarkMessageComplexity regenerates ABL-MSG: distributed construction
// messages per node across sizes (flat ⇒ O(n) total, the paper's
// message-optimality claim).
func BenchmarkMessageComplexity(b *testing.B) {
	for _, n := range []int{20, 50, 100, 200} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				nw := sample(b, n, 6, i)
				total += sim.Run(nw.Graph(), coverage.Hop25).Counters.Total()
			}
			b.ReportMetric(float64(total)/float64(b.N)/float64(n), "msgs/node")
		})
	}
}

// BenchmarkBaselines regenerates ABL-BASELINES: forward nodes across the
// related-work protocols at n=100, d=18.
func BenchmarkBaselines(b *testing.B) {
	protocols := []string{"flooding", "mpr", "dp", "pdp", "dynamic-2.5hop"}
	for _, name := range protocols {
		b.Run(name, func(b *testing.B) {
			src := rng.NewLabeled(9, "baselines")
			total := 0
			for i := 0; i < b.N; i++ {
				nw := sample(b, 100, 18, i)
				s := src.Intn(nw.N())
				var p broadcast.Protocol
				switch name {
				case "flooding":
					p = broadcast.Flooding{}
				case "mpr":
					p = broadcast.NewMPR(broadcast.NewNeighborhood(nw.Graph()))
				case "dp":
					p = broadcast.NewDP(broadcast.NewNeighborhood(nw.Graph()))
				case "pdp":
					p = broadcast.NewPDP(broadcast.NewNeighborhood(nw.Graph()))
				case "dynamic-2.5hop":
					p = nw.DynamicProtocol(core.Hop25)
				}
				total += broadcast.Run(nw.Graph(), s, p).ForwardCount()
			}
			b.ReportMetric(float64(total)/float64(b.N), "fwd-nodes")
		})
	}
}

// BenchmarkTieBreak regenerates ABL-TIE: the static backbone size with and
// without the indirect-coverage tie-breaking rule.
func BenchmarkTieBreak(b *testing.B) {
	for _, opts := range []struct {
		name string
		o    backbone.Options
	}{
		{"with-tiebreak", backbone.Options{}},
		{"without-tiebreak", backbone.Options{NoIndirectTieBreak: true}},
	} {
		b.Run(opts.name, func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				nw := sample(b, 100, 6, i)
				cb := coverage.NewBuilder(nw.Graph(), nw.Clustering, coverage.Hop25)
				total += backbone.BuildStaticOpt(cb, nw.Clustering, opts.o).Size()
			}
			b.ReportMetric(float64(total)/float64(b.N), "cds-size")
		})
	}
}

// BenchmarkMobility regenerates ABL-MOBILITY: static-backbone membership
// churn per mobility step under random waypoint at increasing speeds.
func BenchmarkMobility(b *testing.B) {
	for _, speed := range []float64{2, 10} {
		b.Run(fmt.Sprintf("speed=%g", speed), func(b *testing.B) {
			churn := 0
			steps := 0
			for i := 0; i < b.N; i++ {
				nw := sample(b, 60, 8, i)
				bounds := nw.Topology.Bounds
				mob := topology.NewRandomWaypoint(nw.Topology.Positions, bounds,
					speed/2, speed, 0, rng.NewLabeled(uint64(i), "bench-waypoint"))
				prev := nw.StaticBackbone(core.Hop25)
				for s := 0; s < 5; s++ {
					cur := topology.FromPositions(mob.Step(1), bounds, nw.Topology.Radius)
					cl := cluster.LowestID(cur.G)
					bb := backbone.BuildStatic(cur.G, cl, coverage.Hop25)
					for v := 0; v < 60; v++ {
						if prev.Nodes[v] != bb.Nodes[v] {
							churn++
						}
					}
					prev = bb
					steps++
				}
			}
			if steps > 0 {
				b.ReportMetric(float64(churn)/float64(steps), "churn/step")
			}
		})
	}
}

// BenchmarkConstructionThroughput measures raw end-to-end construction
// cost: topology + clustering + static backbone at n=100 (engineering
// metric, not a paper figure).
func BenchmarkConstructionThroughput(b *testing.B) {
	r := rng.New(1)
	nw, err := topology.Generate(topology.Config{
		N: 100, Bounds: geom.Square(100), AvgDegree: 18, RequireConnected: true,
	}, r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl := cluster.LowestID(nw.G)
		_ = backbone.BuildStatic(nw.G, cl, coverage.Hop25)
		_ = mocds.Build(nw.G, cl)
	}
}

// BenchmarkSICDS regenerates ABL-SICDS: sizes of every source-independent
// CDS construction at n=100, d=6.
func BenchmarkSICDS(b *testing.B) {
	for _, alg := range []string{"static-2.5hop", "mo-cds", "marking", "fwd-tree"} {
		b.Run(alg, func(b *testing.B) {
			src := rng.NewLabeled(12, "sicds")
			total := 0
			for i := 0; i < b.N; i++ {
				nw := sample(b, 100, 6, i)
				switch alg {
				case "static-2.5hop":
					total += nw.StaticBackbone(core.Hop25).Size()
				case "mo-cds":
					total += nw.MOCDS().Size()
				case "marking":
					total += len(marking.Build(nw.Graph()))
				case "fwd-tree":
					cb := coverage.NewBuilder(nw.Graph(), nw.Clustering, coverage.Hop25)
					tree, err := fwdtree.Build(cb, nw.Clustering, src.Intn(nw.N()))
					if err != nil {
						b.Fatal(err)
					}
					total += tree.Size()
				}
			}
			b.ReportMetric(float64(total)/float64(b.N), "cds-size")
		})
	}
}

// BenchmarkLossy regenerates ABL-LOSSY: delivery ratio at 20% per-link
// loss for flooding vs the dynamic backbone.
func BenchmarkLossy(b *testing.B) {
	for _, alg := range []string{"flooding", "dynamic-2.5hop"} {
		b.Run(alg, func(b *testing.B) {
			src := rng.NewLabeled(13, "lossy")
			sum := 0.0
			for i := 0; i < b.N; i++ {
				nw := sample(b, 60, 10, i)
				s := src.Intn(nw.N())
				opt := broadcast.Options{Loss: 0.2, Seed: uint64(i)}
				var res *broadcast.Result
				if alg == "flooding" {
					res = broadcast.RunOpts(nw.Graph(), s, broadcast.Flooding{}, opt)
				} else {
					res = broadcast.RunOpts(nw.Graph(), s, nw.DynamicProtocol(core.Hop25), opt)
				}
				sum += res.DeliveryRatio(nw.N())
			}
			b.ReportMetric(sum/float64(b.N), "delivery")
		})
	}
}

// BenchmarkMaintenance regenerates ABL-MAINT: head churn per step for full
// re-election vs LCC incremental repair at speed 5.
func BenchmarkMaintenance(b *testing.B) {
	for _, alg := range []string{"full-reelection", "lcc-incremental"} {
		b.Run(alg, func(b *testing.B) {
			churn, steps := 0, 0
			for i := 0; i < b.N; i++ {
				nw := sample(b, 60, 8, i)
				mob := topology.NewRandomWaypoint(nw.Topology.Positions, nw.Topology.Bounds,
					2.5, 5, 0, rng.NewLabeled(uint64(i), "bench-maint"))
				prev := nw.Clustering
				for s := 0; s < 5; s++ {
					cur := topology.FromPositions(mob.Step(1), nw.Topology.Bounds, nw.Topology.Radius)
					var next *cluster.Clustering
					if alg == "lcc-incremental" {
						next, _ = cluster.Maintain(cur.G, prev)
					} else {
						next = cluster.LowestID(cur.G)
					}
					for v := 0; v < 60; v++ {
						if next.Head[v] != prev.Head[v] {
							churn++
						}
					}
					prev = next
					steps++
				}
			}
			if steps > 0 {
				b.ReportMetric(float64(churn)/float64(steps), "churn/step")
			}
		})
	}
}

// BenchmarkPassiveConvergence regenerates ABL-PASSIVE: forwarders on the
// first vs the fourth flood of a shared passive-clustering structure.
func BenchmarkPassiveConvergence(b *testing.B) {
	for _, which := range []string{"flood-1", "flood-4"} {
		b.Run(which, func(b *testing.B) {
			src := rng.NewLabeled(14, "passive")
			total := 0
			for i := 0; i < b.N; i++ {
				nw := sample(b, 80, 18, i)
				sources := []int{src.Intn(80), src.Intn(80), src.Intn(80), src.Intn(80)}
				series := passive.RunSeries(nw.Graph(), sources)
				if which == "flood-1" {
					total += series[0].ForwardCount()
				} else {
					total += series[3].ForwardCount()
				}
			}
			b.ReportMetric(float64(total)/float64(b.N), "fwd-nodes")
		})
	}
}

// BenchmarkReliable regenerates ABL-RELIABLE: data transmissions of the
// reliable tree broadcast at 0% and 30% loss.
func BenchmarkReliable(b *testing.B) {
	for _, loss := range []float64{0, 0.3} {
		b.Run(fmt.Sprintf("loss=%g", loss), func(b *testing.B) {
			total := 0
			count := 0
			for i := 0; i < b.N; i++ {
				nw := sample(b, 60, 10, i)
				cb := coverage.NewBuilder(nw.Graph(), nw.Clustering, coverage.Hop25)
				tree, err := fwdtree.Build(cb, nw.Clustering, 0)
				if err != nil {
					b.Fatal(err)
				}
				res, err := reliable.Run(nw.Graph(), tree, 0, reliable.Config{Loss: loss, Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
				if res.Delivered {
					total += res.Transmissions
					count++
				}
			}
			if count > 0 {
				b.ReportMetric(float64(total)/float64(count), "tx/bcast")
			}
		})
	}
}

// BenchmarkPruning regenerates ABL-PRUNING: back-off self-pruning at
// windows 0 and 8 vs the piggyback-pruned dynamic backbone.
func BenchmarkPruning(b *testing.B) {
	run := func(b *testing.B, measure func(nw *core.Network, src int) (int, int)) {
		src := rng.NewLabeled(15, "pruning")
		fwd, lat := 0, 0
		for i := 0; i < b.N; i++ {
			nw := sample(b, 80, 18, i)
			f, l := measure(nw, src.Intn(80))
			fwd += f
			lat += l
		}
		b.ReportMetric(float64(fwd)/float64(b.N), "fwd-nodes")
		b.ReportMetric(float64(lat)/float64(b.N), "latency")
	}
	b.Run("sba-window0", func(b *testing.B) {
		run(b, func(nw *core.Network, src int) (int, int) {
			nb := broadcast.NewNeighborhood(nw.Graph())
			r := broadcast.RunTimed(nw.Graph(), src, broadcast.NewSBA(nb, 0, 1))
			return r.ForwardCount(), r.Latency
		})
	})
	b.Run("sba-window8", func(b *testing.B) {
		run(b, func(nw *core.Network, src int) (int, int) {
			nb := broadcast.NewNeighborhood(nw.Graph())
			r := broadcast.RunTimed(nw.Graph(), src, broadcast.NewSBA(nb, 8, 1))
			return r.ForwardCount(), r.Latency
		})
	})
	b.Run("piggyback-dynamic", func(b *testing.B) {
		run(b, func(nw *core.Network, src int) (int, int) {
			r := nw.DynamicBroadcast(core.Hop25, src)
			return r.ForwardCount(), r.Latency
		})
	})
}

// BenchmarkRouting regenerates ABL-ROUTING: RREQ cost of route discovery.
func BenchmarkRouting(b *testing.B) {
	for _, alg := range []string{"flooding", "backbone"} {
		b.Run(alg, func(b *testing.B) {
			src := rng.NewLabeled(16, "routing")
			cost, stretch, count := 0, 0.0, 0
			for i := 0; i < b.N; i++ {
				nw := sample(b, 80, 12, i)
				s, d := src.Intn(80), src.Intn(80)
				if s == d {
					continue
				}
				var p broadcast.Protocol = broadcast.Flooding{}
				if alg == "backbone" {
					p = nw.DynamicProtocol(core.Hop25)
				}
				route, err := routing.Discover(nw.Graph(), s, d, p)
				if err != nil {
					b.Fatal(err)
				}
				cost += route.RequestCost
				stretch += route.Stretch(nw.Graph())
				count++
			}
			if count > 0 {
				b.ReportMetric(float64(cost)/float64(count), "rreq-tx")
				b.ReportMetric(stretch/float64(count), "stretch")
			}
		})
	}
}

// BenchmarkStorm regenerates ABL-STORM: redundant receptions per node.
func BenchmarkStorm(b *testing.B) {
	for _, alg := range []string{"flooding", "dynamic-2.5hop"} {
		b.Run(alg, func(b *testing.B) {
			src := rng.NewLabeled(17, "storm")
			sum := 0.0
			for i := 0; i < b.N; i++ {
				nw := sample(b, 80, 18, i)
				s := src.Intn(80)
				var res *broadcast.Result
				if alg == "flooding" {
					res = nw.Flood(s)
				} else {
					res = nw.DynamicBroadcast(core.Hop25, s)
				}
				sum += res.Redundancy()
			}
			b.ReportMetric(sum/float64(b.N), "dup/node")
		})
	}
}

// BenchmarkHierarchy regenerates ABL-HIER: heads per hierarchy level.
func BenchmarkHierarchy(b *testing.B) {
	for _, level := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("level=%d", level), func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				nw := sample(b, 100, 8, i)
				h, err := hier.Build(nw.Graph(), level+2)
				if err != nil {
					b.Fatal(err)
				}
				if level < h.Depth() {
					total += len(h.HeadsAt(level))
				} else {
					total++
				}
			}
			b.ReportMetric(float64(total)/float64(b.N), "heads")
		})
	}
}

// BenchmarkCollision regenerates ABL-COLLISION: delivery under
// synchronized MAC collisions.
func BenchmarkCollision(b *testing.B) {
	for _, alg := range []string{"flooding", "dynamic-2.5hop"} {
		b.Run(alg, func(b *testing.B) {
			src := rng.NewLabeled(18, "collision")
			sum := 0.0
			for i := 0; i < b.N; i++ {
				nw := sample(b, 80, 18, i)
				s := src.Intn(80)
				opt := broadcast.MACOptions{Jitter: 0, Seed: uint64(i)}
				var res *broadcast.CollisionResult
				if alg == "flooding" {
					res = broadcast.RunMAC(nw.Graph(), s, broadcast.Flooding{}, opt)
				} else {
					res = broadcast.RunMAC(nw.Graph(), s, nw.DynamicProtocol(core.Hop25), opt)
				}
				sum += res.DeliveryRatio(80)
			}
			b.ReportMetric(sum/float64(b.N), "delivery")
		})
	}
}

// BenchmarkScale exercises the full pipeline at sizes well beyond the
// paper's sweep, demonstrating the simulator's headroom (spatial-grid
// topology construction keeps it near-linear).
func BenchmarkScale(b *testing.B) {
	for _, n := range []int{200, 500, 1000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nw := sample(b, n, 18, i)
				static := nw.StaticBackbone(core.Hop25)
				res := nw.DynamicBroadcast(core.Hop25, i%n)
				if res.ForwardCount() > static.Size()+n/10 {
					b.Fatalf("dynamic forwarders %d implausibly high vs static %d",
						res.ForwardCount(), static.Size())
				}
			}
		})
	}
}

// BenchmarkScaleReplicate measures ONE full replicate of each figure
// pipeline at sizes two to three orders of magnitude beyond the paper's
// sweep (n = 1k, 10k, 50k at the paper's dense degree d=18): connected
// topology sampling, lowest-ID clustering, coverage digestion, and the
// respective backbone construction, all through the production workspace
// path. At these sizes a single replicate — not the replicate count —
// dominates wall-clock, so this is the scaling curve BENCH_PR3.json
// publishes. Run `go test -run xxx -bench ScaleReplicate -benchtime 1x`
// for a quick curve; n=50000 is skipped under -short.
func BenchmarkScaleReplicate(b *testing.B) {
	stages := []struct {
		name string
		est  experiment.WSEstimator
	}{
		{"static25", experiment.StaticSizeEstimatorWS(coverage.Hop25)},
		{"mocds", experiment.MOCDSSizeEstimatorWS()},
		{"dynamic25", experiment.DynamicForwardEstimatorWS(coverage.Hop25)},
	}
	for _, n := range []int{1000, 10000, 50000} {
		for _, st := range stages {
			b.Run(fmt.Sprintf("n=%d/%s", n, st.name), func(b *testing.B) {
				if testing.Short() && n > 10000 {
					b.Skip("n=50000 replicates take seconds; skipped under -short")
				}
				ws := experiment.NewWorkspace()
				sc := experiment.DefaultScenario(n, 18, 2003)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					v, ok := st.est(ws, sc, i)
					if !ok {
						b.Fatal("replicate skipped: no connected topology sampled")
					}
					if v <= 0 {
						b.Fatalf("implausible measurement %v", v)
					}
				}
			})
		}
	}
}

// BenchmarkScaleKernels isolates the backbone-construction kernels the
// sparse/hybrid set representations target: the topology is sampled ONCE
// outside the timer, and each iteration re-runs clusterhead election,
// coverage digestion and the stage's selection (or broadcast) over the
// workspace path. This is the apples-to-apples "dense-kernel baseline"
// comparison for BENCH_PR3.json — topology sampling is geometry, not set
// algebra, and is identical on both sides.
func BenchmarkScaleKernels(b *testing.B) {
	type stage struct {
		name string
		run  func(ws *experiment.Workspace, nw *topology.Network, source int) float64
	}
	stages := []stage{
		{"static25", func(ws *experiment.Workspace, nw *topology.Network, _ int) float64 {
			cl := ws.Cluster.LowestID(nw.G)
			ws.Builder.Reset(nw.G, cl, coverage.Hop25)
			return float64(ws.Backbone.StaticSize(&ws.Builder, cl, backbone.Options{}))
		}},
		{"mocds", func(ws *experiment.Workspace, nw *topology.Network, _ int) float64 {
			cl := ws.Cluster.LowestID(nw.G)
			ws.Builder.Reset(nw.G, cl, coverage.Hop3)
			return float64(ws.MOCDS.SizeFrom(&ws.Builder, cl))
		}},
		{"dynamic25", func(ws *experiment.Workspace, nw *topology.Network, source int) float64 {
			cl := ws.Cluster.LowestID(nw.G)
			p := ws.Dynamic.NewWith(nw.G, cl, coverage.Hop25)
			return float64(p.BroadcastWS(source).ForwardCount())
		}},
	}
	for _, n := range []int{1000, 10000, 50000} {
		for _, st := range stages {
			b.Run(fmt.Sprintf("n=%d/%s", n, st.name), func(b *testing.B) {
				if testing.Short() && n > 10000 {
					b.Skip("n=50000 kernels take seconds; skipped under -short")
				}
				ws := experiment.NewWorkspace()
				sc := experiment.DefaultScenario(n, 18, 2003)
				nw, _, ok := sc.SampleWS(ws, "scale-kernels", 0)
				if !ok {
					b.Fatal("no connected topology sampled")
				}
				source := n / 2
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if v := st.run(ws, nw, source); v <= 0 {
						b.Fatalf("implausible measurement %v", v)
					}
				}
			})
		}
	}
}

// BenchmarkElection regenerates ABL-ELECTION: backbone size under the two
// clusterhead election rules.
func BenchmarkElection(b *testing.B) {
	for _, alg := range []string{"lowest-id", "highest-degree"} {
		b.Run(alg, func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				nw := sample(b, 100, 18, i)
				var cl *cluster.Clustering
				if alg == "lowest-id" {
					cl = nw.Clustering
				} else {
					cl = cluster.HighestDegree(nw.Graph())
				}
				cb := coverage.NewBuilder(nw.Graph(), cl, coverage.Hop25)
				total += backbone.BuildStaticFrom(cb, cl).Size()
			}
			b.ReportMetric(float64(total)/float64(b.N), "cds-size")
		})
	}
}

// BenchmarkTopologyGenerate measures raw connected-topology sampling at the
// paper's dense operating point (n=100, d=18): placement, spatial-grid
// neighbor discovery, graph assembly, and the connectivity check.
func BenchmarkTopologyGenerate(b *testing.B) {
	for _, n := range []int{100, 500} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := rng.New(42)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := topology.Generate(topology.Config{
					N: n, Bounds: geom.Square(100), AvgDegree: 18, RequireConnected: true,
				}, r)
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCoverageBuilder measures the CH_HOP1/CH_HOP2 digest plus all
// per-head coverage sets — the inner kernel of every backbone build.
func BenchmarkCoverageBuilder(b *testing.B) {
	for _, mode := range []coverage.Mode{coverage.Hop25, coverage.Hop3} {
		b.Run(mode.String(), func(b *testing.B) {
			nw := sample(b, 100, 18, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cb := coverage.NewBuilder(nw.Graph(), nw.Clustering, mode)
				for _, h := range nw.Clustering.Heads {
					_ = cb.Of(h)
				}
			}
		})
	}
}

// BenchmarkStaticBackbone measures the greedy gateway selection over a
// prebuilt coverage builder (set-cover hot path, Figure 6's algorithm).
func BenchmarkStaticBackbone(b *testing.B) {
	nw := sample(b, 100, 18, 1)
	cb := coverage.NewBuilder(nw.Graph(), nw.Clustering, coverage.Hop25)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = backbone.BuildStaticFrom(cb, nw.Clustering)
	}
}

// BenchmarkDynamicBroadcast measures one dynamic-backbone broadcast,
// including the per-broadcast coverage pruning (Figure 7's hot path).
func BenchmarkDynamicBroadcast(b *testing.B) {
	nw := sample(b, 100, 18, 1)
	p := nw.DynamicProtocol(core.Hop25)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = broadcast.Run(nw.Graph(), i%nw.N(), p)
	}
}

// BenchmarkSweepPoint measures one full figure data point end to end —
// n=100, d=18, replicated under the paper's stopping rule (99% CI within
// ±5%) — exactly what cmd/figures runs per (figure, series, n), through the
// production workspace-pooled batched-replication path at the configured
// worker count.
func BenchmarkSweepPoint(b *testing.B) {
	sc := experiment.DefaultScenario(100, 18, 2003)
	est := experiment.StaticSizeEstimatorWS(coverage.Hop25)
	workers := experiment.Parallelism()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := experiment.SweepPoint(sc, workers, est)
		if p.Missing() {
			b.Fatal("sweep point failed")
		}
		if p.Mean < 10 {
			b.Fatalf("implausible CDS size %.1f", p.Mean)
		}
	}
}

// BenchmarkMobilityStep measures one mobility time step of unit-disk-graph
// maintenance at n=100, d=18: full FromPositions reconstruction vs the
// incremental topology.Dynamic repair that re-tests only the grid cells the
// moved nodes touched. "sparse-10pct" moves 10 nodes per step (the regime
// mobility ablations run in); "all-nodes" re-places every node (worst case,
// where the incremental path falls back to a grid-reusing rebuild).
func BenchmarkMobilityStep(b *testing.B) {
	const n = 100
	for _, w := range []struct {
		name   string
		movers int
	}{
		{"sparse-10pct", n / 10},
		{"all-nodes", n},
	} {
		for _, mode := range []string{"full-rebuild", "incremental"} {
			b.Run(w.name+"/"+mode, func(b *testing.B) {
				nw := sample(b, n, 18, 1).Topology
				bounds, radius := nw.Bounds, nw.Radius
				pos := append([]geom.Point(nil), nw.Positions...)
				r := rng.NewLabeled(3, "bench-mobility")
				var dyn *topology.Dynamic
				if mode == "incremental" {
					dyn = topology.NewDynamic(nw)
				}
				b.ReportAllocs()
				b.ResetTimer()
				edges := 0
				for i := 0; i < b.N; i++ {
					for m := 0; m < w.movers; m++ {
						v := r.Intn(n)
						pos[v] = bounds.Clamp(geom.Point{
							X: pos[v].X + (r.Float64()-0.5)*2,
							Y: pos[v].Y + (r.Float64()-0.5)*2,
						})
					}
					if dyn != nil {
						edges += dyn.Step(pos).G.M()
					} else {
						edges += topology.FromPositions(pos, bounds, radius).G.M()
					}
				}
				_ = edges
			})
		}
	}
}

// BenchmarkBitsetOps measures the graph.Bitset kernels (union, difference,
// popcount, iterate) at the coverage-set universe size of the paper's
// largest sweep point.
func BenchmarkBitsetOps(b *testing.B) {
	const n = 100
	r := rng.New(5)
	x := graph.NewBitset(n)
	y := graph.NewBitset(n)
	for i := 0; i < 30; i++ {
		x.Add(r.Intn(n))
		y.Add(r.Intn(n))
	}
	scratch := graph.NewBitset(n)
	b.Run("clone-or-andnot-count", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scratch.CopyFrom(x)
			scratch.Or(y)
			scratch.AndNot(x)
			_ = scratch.Count()
		}
	})
	b.Run("foreach", func(b *testing.B) {
		b.ReportAllocs()
		sum := 0
		for i := 0; i < b.N; i++ {
			x.ForEach(func(v int) { sum += v })
		}
		_ = sum
	})
}

// BenchmarkBitsetReset is the regression guard for the high-water-mark
// Reset: clearing a bitset costs O(words up to the highest word touched
// since the last clear), not Θ(capacity/64), and never allocates. The
// members are confined to the low 4096 IDs, so ns/op must stay flat as the
// capacity grows 10000× — a capacity-proportional clear would blow the
// n=1M case up by three orders of magnitude.
func BenchmarkBitsetReset(b *testing.B) {
	for _, n := range []int{100, 100000, 1 << 20} {
		b.Run(fmt.Sprintf("n=%d/touched=64", n), func(b *testing.B) {
			x := graph.NewBitset(n)
			r := rng.New(11)
			lim := 4096
			if lim > n {
				lim = n
			}
			ids := make([]int, 64)
			for i := range ids {
				ids[i] = r.Intn(lim)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, v := range ids {
					x.Add(v)
				}
				x.Reset(n)
			}
		})
	}
}

// BenchmarkReplicateBatch is the bit-parallel replication scaling curve
// (BENCH_PR6.json): the cost of advancing 64 loss/gossip replicates, batch
// engine vs the scalar engine the legacy sweep path runs. Both variants do
// the same statistical work per iteration — 64 Monte-Carlo replicates of
// one broadcast over one sampled topology at i.i.d. per-link loss 0.2 —
// so ns/op is directly comparable and the replicates/s metric is the
// sweep-throughput headline. The topology is sampled once outside the
// timer (shared per batch in the production path too); fault-chain
// construction is inside the timer on the batch side, since the batch
// path pays it per 64 lanes. n=100000 is skipped under -short.
func BenchmarkReplicateBatch(b *testing.B) {
	const loss = 0.2
	protos := []struct {
		name   string
		batch  broadcast.BatchProtocol
		scalar broadcast.Protocol
	}{
		{"flooding", broadcast.BatchFlooding{}, broadcast.Flooding{}},
		{"gossip65", broadcast.BatchGossip{P: 0.65, Seed: 99}, broadcast.Gossip{P: 0.65, Seed: 99}},
	}
	for _, n := range []int{1000, 10000, 100000} {
		for _, pr := range protos {
			ws := experiment.NewWorkspace()
			sc := experiment.DefaultScenario(n, 18, 2003)
			setup := func(b *testing.B) (*topology.Network, int) {
				if testing.Short() && n > 10000 {
					b.Skip("n=100000 batches take seconds; skipped under -short")
				}
				nw, _, ok := sc.SampleWS(ws, "replicate-batch", 0)
				if !ok {
					b.Fatal("no connected topology sampled")
				}
				return nw, n / 2
			}
			b.Run(fmt.Sprintf("n=%d/%s-batch64", n, pr.name), func(b *testing.B) {
				nw, src := setup(b)
				b.ReportAllocs()
				b.ResetTimer()
				got := 0
				for i := 0; i < b.N; i++ {
					spec := faults.Spec{LossGood: loss, Seed: uint64(i)*0x9E3779B97F4A7C15 + 4242}
					res := ws.Batch.Run(nw.G, src, pr.batch, broadcast.BatchOptions{
						Chains: faults.NewChainBatch(spec),
					})
					got += res.Received[0]
				}
				if got <= 0 {
					b.Fatal("no lane delivered anything")
				}
				b.ReportMetric(float64(b.N)*64/b.Elapsed().Seconds(), "replicates/s")
			})
			b.Run(fmt.Sprintf("n=%d/%s-scalar", n, pr.name), func(b *testing.B) {
				nw, src := setup(b)
				b.ReportAllocs()
				b.ResetTimer()
				got := 0
				for i := 0; i < b.N; i++ {
					for lane := 0; lane < 64; lane++ {
						rep := uint64(i)*64 + uint64(lane)
						res := ws.Bcast.RunOpts(nw.G, src, pr.scalar,
							broadcast.Options{Loss: loss, Seed: rep*0x9E3779B97F4A7C15 + 4242})
						got += res.ReceivedCount()
					}
				}
				if got <= 0 {
					b.Fatal("no replicate delivered anything")
				}
				b.ReportMetric(float64(b.N)*64/b.Elapsed().Seconds(), "replicates/s")
			})
		}
	}
}

// BenchmarkDESMAC compares the scalar slotted-collision engine against the
// event-calendar port at sizes up to two orders of magnitude past the
// paper's sweep. The topology is sampled once outside the timer; each
// iteration replays one full broadcast. The gossip variant thins the
// forwarder set, so with an 8-slot contention window most calendar slots
// are sparsely occupied — the regime the bucketed timestamp wheel and the
// epoch-stamped receiver state pay off in (the scalar engine rebuilds its
// per-slot maps either way). The des rows report ~0 allocs/op: the event
// loop runs allocation-free once the workspace is warm.
func BenchmarkDESMAC(b *testing.B) {
	protos := []struct {
		name string
		p    broadcast.Protocol
	}{
		{"flooding", broadcast.Flooding{}},
		{"gossip65", broadcast.Gossip{P: 0.65, Seed: 7}},
	}
	for _, n := range []int{1000, 10000, 100000} {
		for _, pr := range protos {
			opt := broadcast.MACOptions{Jitter: 8, Seed: 7}
			b.Run(fmt.Sprintf("n=%d/%s-scalar", n, pr.name), func(b *testing.B) {
				if testing.Short() && n > 10000 {
					b.Skip("n=100000 runs take seconds; skipped under -short")
				}
				g := sample(b, n, 18, 0).Graph()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res := broadcast.RunMAC(g, 0, pr.p, opt)
					if len(res.Received) < 2 {
						b.Fatal("broadcast did not spread")
					}
				}
			})
			b.Run(fmt.Sprintf("n=%d/%s-des", n, pr.name), func(b *testing.B) {
				if testing.Short() && n > 10000 {
					b.Skip("n=100000 runs take seconds; skipped under -short")
				}
				g := sample(b, n, 18, 0).Graph()
				mw := broadcast.NewMACWorkspace()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res := mw.Run(g, 0, pr.p, opt)
					if res.ReceivedCount() < 2 {
						b.Fatal("broadcast did not spread")
					}
				}
			})
		}
	}
}

// BenchmarkDESWire compares the construction wire protocol's scalar
// round-scan simulator (per-node maps, full-n scans every round) against
// the worklist port at the same scale points.
func BenchmarkDESWire(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		for _, eng := range []string{"scalar", "des"} {
			b.Run(fmt.Sprintf("n=%d/%s", n, eng), func(b *testing.B) {
				if testing.Short() && n > 10000 {
					b.Skip("n=100000 runs take seconds; skipped under -short")
				}
				g := sample(b, n, 18, 0).Graph()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var out *sim.Outcome
					if eng == "des" {
						out = sim.RunDES(g, coverage.Hop25)
					} else {
						out = sim.Run(g, coverage.Hop25)
					}
					if len(out.Heads) == 0 {
						b.Fatal("no clusterheads elected")
					}
				}
			})
		}
	}
}

// BenchmarkDESTimed compares the delayed-decision engine (binary heap)
// against its calendar port (timestamp wheel + epoch-stamped state).
func BenchmarkDESTimed(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		for _, eng := range []string{"scalar", "des"} {
			b.Run(fmt.Sprintf("n=%d/%s", n, eng), func(b *testing.B) {
				if testing.Short() && n > 10000 {
					b.Skip("n=100000 runs take seconds; skipped under -short")
				}
				g := sample(b, n, 18, 0).Graph()
				p := broadcast.CounterBased{Threshold: 3, MaxDelay: 8, Seed: 7}
				tw := broadcast.NewTimedWorkspace()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					var res *broadcast.Result
					if eng == "des" {
						res = tw.Run(g, 0, p, broadcast.TimedOptions{})
					} else {
						res = broadcast.RunTimed(g, 0, p)
					}
					if len(res.Received) < 2 {
						b.Fatal("broadcast did not spread")
					}
				}
			})
		}
	}
}

// BenchmarkWorkloadThroughput measures the multi-source MAC engine's
// scaling curve: one Poisson workload of 32 concurrent flooding flows
// (rate 0.5 arrivals/slot, jitter 4) contending for slots on one fixed
// unit-disk graph (d=18, the dense paper regime — connected at every
// size), scalar engine vs calendar port, at n = 1k /
// 10k / 100k. The n=100000 point is skipped under -short. The measured
// end-to-end throughput (deliveries per slot of makespan) is reported as
// a custom metric; BENCH_PR10.json publishes the curve.
func BenchmarkWorkloadThroughput(b *testing.B) {
	engines := []struct {
		name string
		run  workload.Engine
	}{
		{"scalar", broadcast.RunMACMulti},
		{"des", broadcast.RunMACMultiDES},
	}
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			if testing.Short() && n > 10000 {
				b.Skip("large workload point skipped with -short")
			}
			nw := sample(b, n, 18, 0)
			spec := workload.Spec{Process: workload.Poisson, Rate: 0.5, Flows: 32, FanOut: 1, Seed: 99}
			flows, err := spec.Generate(nw.N())
			if err != nil {
				b.Fatal(err)
			}
			proto := func(int) broadcast.Protocol { return broadcast.Flooding{} }
			opt := broadcast.MACOptions{Jitter: 4}
			for _, e := range engines {
				b.Run(e.name, func(b *testing.B) {
					var last *workload.TrafficResult
					for i := 0; i < b.N; i++ {
						last = workload.RunTraffic(nw.Graph(), flows, proto, opt, e.run)
					}
					if last.DeliveryRatio == 0 {
						b.Fatal("workload delivered nothing")
					}
					b.ReportMetric(last.Throughput, "deliveries/slot")
				})
			}
		})
	}
}
