package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clustercast/internal/core"
)

func TestRunAllProtocols(t *testing.T) {
	var out bytes.Buffer
	cfg := config{n: 40, d: 10, seed: 3, source: -1, protocols: "all"}
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, proto := range []string{"flooding", "pdp", "dynamic-2.5", "mo-cds", "fwd-tree", "counter-3"} {
		if !strings.Contains(s, proto) {
			t.Fatalf("output missing protocol %q:\n%s", proto, s)
		}
	}
	if !strings.Contains(s, "100.0%") {
		t.Fatal("no protocol reported full delivery")
	}
}

func TestRunSelectedProtocols(t *testing.T) {
	var out bytes.Buffer
	cfg := config{n: 30, d: 8, seed: 5, source: 0, protocols: "flooding,dynamic-2.5"}
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "flooding") || !strings.Contains(s, "dynamic-2.5") {
		t.Fatalf("selected protocols missing:\n%s", s)
	}
	// The summary line mentions "mo-cds=…", so look for the table row form.
	if strings.Contains(s, "\nmo-cds ") || strings.Contains(s, "\npdp ") {
		t.Fatal("unselected protocol row printed")
	}
}

func TestRunUnknownProtocol(t *testing.T) {
	cfg := config{n: 20, d: 8, seed: 1, source: 0, protocols: "warp-drive"}
	if err := run(cfg, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "unknown protocol") {
		t.Fatalf("want unknown-protocol error, got %v", err)
	}
}

func TestRunSourceOutOfRange(t *testing.T) {
	cfg := config{n: 20, d: 8, seed: 1, source: 99, protocols: "flooding"}
	if err := run(cfg, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("want out-of-range error, got %v", err)
	}
}

func TestRunWire(t *testing.T) {
	var out bytes.Buffer
	cfg := config{n: 30, d: 8, seed: 7, source: 0, protocols: "flooding", wire: true}
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wire protocol") ||
		!strings.Contains(out.String(), "HELLO=30") {
		t.Fatalf("wire summary missing:\n%s", out.String())
	}
}

func TestRunLoadSnapshot(t *testing.T) {
	// Save a snapshot via the topology API, then load it through the CLI
	// path.
	nw, err := core.NewRandomNetwork(core.NetworkSpec{N: 25, AvgDegree: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "net.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Topology.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out bytes.Buffer
	cfg := config{seed: 1, source: 0, protocols: "flooding", load: path}
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "n=25") {
		t.Fatalf("loaded network not reflected:\n%s", out.String())
	}
}

func TestRunLoadMissingFile(t *testing.T) {
	cfg := config{seed: 1, source: 0, protocols: "flooding", load: "/does/not/exist.json"}
	if err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Fatal("missing snapshot must error")
	}
}

// TestRunDESByteIdentical: the -des engines must reproduce the scalar
// comparison table byte for byte — every protocol row, the wire-protocol
// section, and a churn fault schedule included.
func TestRunDESByteIdentical(t *testing.T) {
	cfgs := []config{
		{n: 40, d: 10, seed: 3, source: -1, protocols: "all", wire: true},
		{n: 30, d: 8, seed: 5, source: 0, protocols: "all", faults: "mtbf=60,mttr=20"},
	}
	for i, cfg := range cfgs {
		var scalar, des bytes.Buffer
		if err := run(cfg, &scalar); err != nil {
			t.Fatal(err)
		}
		cfg.des = true
		if err := run(cfg, &des); err != nil {
			t.Fatal(err)
		}
		if scalar.String() != des.String() {
			t.Errorf("cfg %d: -des output differs from scalar:\n--- scalar ---\n%s\n--- des ---\n%s",
				i, scalar.String(), des.String())
		}
	}
}

// TestRunTrafficReport: the -traffic flag appends a per-backbone load
// report, identical bytes with the calendar engines on.
func TestRunTrafficReport(t *testing.T) {
	var out bytes.Buffer
	cfg := config{n: 40, d: 10, seed: 3, source: 0, protocols: "flooding",
		traffic: "proc=poisson,rate=0.3,flows=16"}
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "traffic workload:") || !strings.Contains(s, "throughput") {
		t.Fatalf("traffic report missing:\n%s", s)
	}
	for _, row := range []string{"flooding", "static-2.5", "dynamic-2.5", "mo-cds"} {
		if !strings.Contains(s, row) {
			t.Fatalf("traffic report missing backbone %q:\n%s", row, s)
		}
	}
	var des bytes.Buffer
	cfgDES := cfg
	cfgDES.des = true
	if err := run(cfgDES, &des); err != nil {
		t.Fatal(err)
	}
	if des.String() != s {
		t.Fatal("-des changed the traffic report bytes")
	}
}

// TestRunTrafficDiscovery: discovery=1 switches to the route-discovery
// report.
func TestRunTrafficDiscovery(t *testing.T) {
	var out bytes.Buffer
	cfg := config{n: 40, d: 10, seed: 4, source: 0, protocols: "flooding",
		traffic: "proc=bursty,burst=2,every=12,flows=12,discovery=1"}
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "success") || !strings.Contains(s, "routelen") {
		t.Fatalf("discovery report missing:\n%s", s)
	}
}

// TestRunTrafficBadSpec: a malformed spec is a user error, not a panic.
func TestRunTrafficBadSpec(t *testing.T) {
	cfg := config{n: 20, d: 8, seed: 1, source: 0, protocols: "flooding", traffic: "proc=warp"}
	if err := run(cfg, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "-traffic") {
		t.Fatalf("want -traffic parse error, got %v", err)
	}
}
