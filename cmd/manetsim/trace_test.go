package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"clustercast/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden trace files")

const goldenTrace = "testdata/trace_dynamic25_n40_d10_seed3.jsonl"

// traceRun executes one traced manetsim run and returns the trace bytes.
func traceRun(t *testing.T, maxprocs int) []byte {
	t.Helper()
	if maxprocs > 0 {
		old := runtime.GOMAXPROCS(maxprocs)
		defer runtime.GOMAXPROCS(old)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	cfg := config{n: 40, d: 10, seed: 3, source: 0, protocols: "dynamic-2.5", trace: path}
	if err := run(cfg, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestTraceGolden pins the JSONL wire format byte for byte: field order,
// event order, and naming must not drift, or recorded traces stop being
// comparable across versions. Regenerate with `go test -run TraceGolden
// -update` only when the format change is intentional.
func TestTraceGolden(t *testing.T) {
	got := traceRun(t, 0)
	if *update {
		if err := os.WriteFile(goldenTrace, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenTrace)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace diverged from golden %s (%d vs %d bytes); run with -update if intentional",
			goldenTrace, len(got), len(want))
	}
}

// TestTraceStableAcrossProcs: a single broadcast is sequential, so the
// recorded event stream must be byte-identical whatever the scheduler's
// processor count is.
func TestTraceStableAcrossProcs(t *testing.T) {
	one := traceRun(t, 1)
	four := traceRun(t, 4)
	if !bytes.Equal(one, four) {
		t.Fatal("trace differs between GOMAXPROCS=1 and GOMAXPROCS=4")
	}
}

// TestTraceRequiresOneProtocol: a trace file holds exactly one broadcast.
func TestTraceRequiresOneProtocol(t *testing.T) {
	for _, protocols := range []string{"all", "flooding,dynamic-2.5"} {
		cfg := config{n: 20, d: 8, seed: 1, source: 0, protocols: protocols, trace: filepath.Join(t.TempDir(), "t.jsonl")}
		if err := run(cfg, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "exactly one protocol") {
			t.Fatalf("protocols=%q: want exactly-one-protocol error, got %v", protocols, err)
		}
	}
}

// TestTracePassiveUnsupported: the multi-round passive series cannot be
// represented as a single-broadcast trace and must say so.
func TestTracePassiveUnsupported(t *testing.T) {
	cfg := config{n: 20, d: 8, seed: 1, source: 0, protocols: "passive", trace: filepath.Join(t.TempDir(), "t.jsonl")}
	if err := run(cfg, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "not supported") {
		t.Fatalf("want unsupported error, got %v", err)
	}
}

// TestManifestRoundTrip: -manifest records the run's identity and outputs,
// and the whole-run metric folds land in it.
func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	mpath := filepath.Join(dir, "manifest.json")
	tpath := filepath.Join(dir, "trace.jsonl")
	cfg := config{n: 40, d: 10, seed: 3, source: 0, protocols: "dynamic-2.5", trace: tpath, manifest: mpath}
	if err := run(cfg, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if obs.Enabled() {
		t.Fatal("run left the obs layer enabled")
	}
	m, err := obs.ReadManifest(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tool != "manetsim" || m.Seed != 3 || m.Params["n"] != "40" {
		t.Fatalf("manifest identity wrong: %+v", m)
	}
	if len(m.Outputs) != 2 {
		t.Fatalf("outputs = %v, want trace + manifest", m.Outputs)
	}
	counters := map[string]int64{}
	for _, c := range m.Metrics.Counters {
		counters[c.Name] = c.Value
	}
	if counters["broadcast.runs"] != 1 {
		t.Fatalf("broadcast.runs = %d in manifest", counters["broadcast.runs"])
	}
	if counters["broadcast.deliveries"] != 39 {
		t.Fatalf("broadcast.deliveries = %d, want 39 (n-1 on a connected net)", counters["broadcast.deliveries"])
	}

	// The trace and the manifest describe the same run: deliver events in
	// the one must equal the deliveries counter in the other.
	f, err := os.Open(tpath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	delivers := 0
	prunes := int64(0)
	for _, ev := range events {
		switch ev.Kind {
		case obs.EvDeliver:
			delivers++
		case obs.EvCoveragePrune:
			prunes++
		}
	}
	if int64(delivers) != counters["broadcast.deliveries"] {
		t.Fatalf("trace delivers %d != manifest deliveries %d", delivers, counters["broadcast.deliveries"])
	}
	total := counters["dynamicb.prune.upstream_sender"] +
		counters["dynamicb.prune.piggybacked_set"] +
		counters["dynamicb.prune.second_hop_adjacent"]
	if prunes != total {
		t.Fatalf("trace prunes %d != manifest per-rule total %d", prunes, total)
	}
}
