// Command manetsim simulates one MANET scenario end to end: it generates a
// random connected unit-disk-graph network (or loads a snapshot), clusters
// it, builds every backbone, and runs one broadcast under each protocol,
// printing a comparison table.
//
// Usage:
//
//	manetsim -n 100 -d 18 -seed 7 -source 0
//	manetsim -n 60 -d 6 -protocols flooding,dynamic-2.5,mo-cds
//	manetsim -n 80 -d 10 -faults mtbf=100,mttr=30   # churn + repair report
//	manetsim -load net.json -wire
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"

	"clustercast/internal/backbone"
	"clustercast/internal/broadcast"
	"clustercast/internal/core"
	"clustercast/internal/coverage"
	"clustercast/internal/faults"
	"clustercast/internal/fwdtree"
	"clustercast/internal/graph"
	"clustercast/internal/marking"
	"clustercast/internal/obs"
	"clustercast/internal/obs/live"
	"clustercast/internal/passive"
	"clustercast/internal/prof"
	"clustercast/internal/rng"
	"clustercast/internal/sim"
	"clustercast/internal/topology"
	"clustercast/internal/workload"
)

// config holds the parsed command line.
type config struct {
	n         int
	d         float64
	seed      uint64
	source    int
	protocols string
	faults    string
	traffic   string
	wire      bool
	des       bool
	load      string
	workers   int
	buildW    int
	cpuProf   string
	memProf   string
	trace     string
	manifest  string
	tel       live.Flags
}

// desEngine mirrors the -des flag: route the rows through the calendar
// engines (bit-identical output, faster slot handling on sparse regimes).
var desEngine bool

func runEngine(g *graph.Graph, src int, p broadcast.Protocol, opt broadcast.Options) *broadcast.Result {
	if desEngine {
		return broadcast.RunDESOpts(g, src, p, opt)
	}
	return broadcast.RunOpts(g, src, p, opt)
}

func runTimedEngine(g *graph.Graph, src int, p broadcast.TimedProtocol, opt broadcast.TimedOptions) *broadcast.Result {
	if desEngine {
		return broadcast.RunTimedDES(g, src, p, opt)
	}
	return broadcast.RunTimedOpts(g, src, p, opt)
}

func runWire(g *graph.Graph, mode core.Mode) *sim.Outcome {
	if desEngine {
		return sim.RunDES(g, mode)
	}
	return sim.Run(g, mode)
}

// protocolRun is one row of the comparison table.
type protocolRun struct {
	name string
	run  func() (*broadcast.Result, error)
}

// buildRuns assembles the protocol table for a network and source. A
// non-nil tr threads the trace recorder through whichever engine the row
// uses; run() guarantees at most one traced row executes, so the trace
// holds exactly one broadcast.
func buildRuns(nw *core.Network, src int, seed uint64, tr *obs.Tracer, fo *faults.Oracle) []protocolRun {
	g := nw.Graph()
	nb := broadcast.NewNeighborhood(g)
	ok := func(r *broadcast.Result) (*broadcast.Result, error) { return r, nil }
	opt := broadcast.Options{Tracer: tr, Faults: fo}
	topt := broadcast.TimedOptions{Tracer: tr, Faults: fo}
	static := func(mode core.Mode) (*broadcast.Result, error) {
		s := nw.StaticBackbone(mode)
		return ok(runEngine(g, src, broadcast.StaticCDS{Set: s.Nodes, Label: "static-" + s.Mode.String()}, opt))
	}
	dynamic := func(mode core.Mode) (*broadcast.Result, error) {
		p := nw.DynamicProtocol(mode)
		p.SetTracer(tr)
		// Run through the engine options directly so the fault oracle (and
		// tracer) reach the engine; p.Broadcast would drop the oracle.
		return ok(runEngine(g, src, p, opt))
	}
	return []protocolRun{
		{"flooding", func() (*broadcast.Result, error) { return ok(runEngine(g, src, broadcast.Flooding{}, opt)) }},
		{"gossip", func() (*broadcast.Result, error) {
			return ok(runEngine(g, src, broadcast.Gossip{P: 0.7, Seed: seed}, opt))
		}},
		{"mpr", func() (*broadcast.Result, error) { return ok(runEngine(g, src, broadcast.NewMPR(nb), opt)) }},
		{"dp", func() (*broadcast.Result, error) { return ok(runEngine(g, src, broadcast.NewDP(nb), opt)) }},
		{"pdp", func() (*broadcast.Result, error) { return ok(runEngine(g, src, broadcast.NewPDP(nb), opt)) }},
		{"static-2.5", func() (*broadcast.Result, error) { return static(core.Hop25) }},
		{"static-3", func() (*broadcast.Result, error) { return static(core.Hop3) }},
		{"dynamic-2.5", func() (*broadcast.Result, error) { return dynamic(core.Hop25) }},
		{"dynamic-3", func() (*broadcast.Result, error) { return dynamic(core.Hop3) }},
		{"mo-cds", func() (*broadcast.Result, error) {
			c := nw.MOCDS()
			return ok(runEngine(g, src, broadcast.StaticCDS{Set: c.Nodes, Label: "mo-cds"}, opt))
		}},
		{"marking", func() (*broadcast.Result, error) {
			return ok(runEngine(g, src, broadcast.StaticCDS{Set: marking.Build(g), Label: "marking"}, opt))
		}},
		{"fwd-tree", func() (*broadcast.Result, error) {
			b := coverage.NewBuilder(g, nw.Clustering, coverage.Hop25)
			tree, err := fwdtree.Build(b, nw.Clustering, src)
			if err != nil {
				return nil, err
			}
			return ok(runEngine(g, src, broadcast.StaticCDS{Set: tree.Nodes, Label: "fwd-tree"}, opt))
		}},
		{"passive", func() (*broadcast.Result, error) {
			if tr != nil {
				return nil, fmt.Errorf("tracing is not supported for the multi-round passive series")
			}
			series := passive.RunSeries(g, []int{src, src, src})
			return ok(series[len(series)-1])
		}},
		{"sba", func() (*broadcast.Result, error) {
			return ok(runTimedEngine(g, src, broadcast.NewSBA(nb, 4, seed), topt))
		}},
		{"counter-3", func() (*broadcast.Result, error) {
			return ok(runTimedEngine(g, src, broadcast.CounterBased{Threshold: 3, MaxDelay: 4, Seed: seed}, topt))
		}},
		{"distance", func() (*broadcast.Result, error) {
			return ok(runTimedEngine(g, src, broadcast.DistanceBased{
				Positions: nw.Topology.Positions, MinDistance: nw.Topology.Radius * 0.4,
				MaxDelay: 4, Seed: seed,
			}, topt))
		}},
	}
}

// runTraffic drives the -traffic workload over each relay structure:
// concurrent multi-source broadcasts (or RREQ floods when the spec says
// discovery=1) contending for MAC slots, one comparison row per backbone.
func runTraffic(cfg config, nw *core.Network, oracle *faults.Oracle, stdout io.Writer) error {
	spec, err := workload.ParseSpec(cfg.traffic)
	if err != nil {
		return fmt.Errorf("-traffic: %w", err)
	}
	if spec.Seed == 0 {
		spec.Seed = cfg.seed
	}
	flows, err := spec.Generate(nw.N())
	if err != nil {
		return fmt.Errorf("-traffic: %w", err)
	}
	engine := workload.Engine(broadcast.RunMACMulti)
	if cfg.des {
		engine = broadcast.RunMACMultiDES
	}
	const jitter = 3
	g := nw.Graph()
	opt := broadcast.MACOptions{Jitter: jitter, Faults: oracle}
	shared := func(p broadcast.Protocol) workload.ProtoFactory {
		return func(int) broadcast.Protocol { return p }
	}
	type bk struct {
		name  string
		proto workload.ProtoFactory
	}
	st := nw.StaticBackbone(core.Hop25)
	mo := nw.MOCDS()
	backbones := []bk{
		{"flooding", shared(broadcast.Flooding{})},
		{"static-2.5", shared(broadcast.StaticCDS{Set: st.Nodes, Label: "static-2.5hop"})},
		{"dynamic-2.5", shared(nw.DynamicProtocol(core.Hop25))},
		{"mo-cds", shared(broadcast.StaticCDS{Set: mo.Nodes, Label: "mo-cds"})},
	}
	fmt.Fprintf(stdout, "\ntraffic workload: %s (%d flows, jitter %d)\n", spec.String(), len(flows), jitter)
	if spec.Discovery {
		fmt.Fprintf(stdout, "%-12s %9s %9s %9s %9s %9s\n",
			"protocol", "found", "success", "latency", "routelen", "stretch")
		for _, b := range backbones {
			dr := workload.RunDiscovery(g, flows, b.proto, opt, engine)
			fmt.Fprintf(stdout, "%-12s %4d/%-4d %8.1f%% %9.1f %9.2f %9.2f\n",
				b.name, dr.Found, dr.Requests, 100*dr.SuccessRatio,
				dr.MeanLatency, dr.MeanRouteLen, dr.MeanStretch)
		}
		return nil
	}
	fmt.Fprintf(stdout, "%-12s %9s %10s %9s %10s %6s\n",
		"protocol", "delivery", "throughput", "latency", "collisions", "cross")
	for _, b := range backbones {
		tr := workload.RunTraffic(g, flows, b.proto, opt, engine)
		fmt.Fprintf(stdout, "%-12s %8.1f%% %10.2f %9.1f %10d %6d\n",
			b.name, 100*tr.DeliveryRatio, tr.Throughput, tr.MeanLatency,
			tr.Collisions, tr.CrossCollisions)
	}
	return nil
}

// loadNetwork resolves the scenario network from the configuration.
func loadNetwork(cfg *config) (*core.Network, error) {
	if cfg.load != "" {
		f, err := os.Open(cfg.load)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tn, err := topology.Load(f)
		if err != nil {
			return nil, err
		}
		nw := core.FromTopology(tn)
		cfg.n = nw.N()
		return nw, nil
	}
	return core.NewRandomNetwork(core.NetworkSpec{N: cfg.n, AvgDegree: cfg.d, Seed: cfg.seed, BuildWorkers: cfg.buildW})
}

// run executes the command against the given writer. The named return lets
// the deferred telemetry shutdown surface its error.
func run(cfg config, stdout io.Writer) (retErr error) {
	var manifest *obs.Manifest
	if cfg.manifest != "" || cfg.tel.Active() {
		obs.Enable()
		defer obs.Disable()
		obs.Default.Reset()
		obs.ResetStages()
	}
	sess, err := cfg.tel.Start(stdout)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(); retErr == nil {
			retErr = cerr
		}
	}()
	if cfg.manifest != "" {
		manifest = obs.NewManifest("manetsim")
		manifest.Seed = cfg.seed
		manifest.Workers = cfg.workers
		manifest.Param("n", cfg.n).Param("d", cfg.d).Param("source", cfg.source).
			Param("protocols", cfg.protocols).Param("load", cfg.load).Param("wire", cfg.wire).
			Param("faults", cfg.faults).Param("traffic", cfg.traffic)
	}

	desEngine = cfg.des

	nw, err := loadNetwork(&cfg)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, "network:", nw.Summarize())

	var oracle *faults.Oracle
	if cfg.faults != "" {
		spec, err := faults.ParseSpec(cfg.faults)
		if err != nil {
			return fmt.Errorf("-faults: %w", err)
		}
		if spec.Seed == 0 {
			spec.Seed = cfg.seed
		}
		oracle = faults.New(spec, nw.N())
		oracle.SetPositions(nw.Topology.Positions)
		fmt.Fprintf(stdout, "faults: %s (alive at t=0: %d/%d)\n",
			spec.String(), oracle.AliveCount(0), nw.N())
	}

	src := cfg.source
	if src < 0 {
		src = rng.NewLabeled(cfg.seed, "source").Intn(cfg.n)
	}
	if src >= cfg.n {
		return fmt.Errorf("source %d out of range (n=%d)", src, cfg.n)
	}
	if oracle != nil && !oracle.NodeUp(src, 0) {
		fmt.Fprintf(stdout, "note: source %d is down at t=0 under this fault schedule; nothing will spread\n", src)
	}
	fmt.Fprintf(stdout, "broadcast source: %d\n\n", src)

	want := map[string]bool{}
	if cfg.protocols != "all" {
		for _, p := range strings.Split(cfg.protocols, ",") {
			want[strings.TrimSpace(p)] = true
		}
	}
	var tracer *obs.Tracer
	if cfg.trace != "" {
		// A trace file holds exactly one broadcast, so the protocol must be
		// unambiguous.
		if cfg.protocols == "all" || len(want) != 1 {
			return fmt.Errorf("-trace needs exactly one protocol selected (e.g. -protocols dynamic-2.5)")
		}
		tracer = obs.NewTracer(16 * cfg.n)
	}
	runs := buildRuns(nw, src, cfg.seed, tracer, oracle)
	known := map[string]bool{}
	for _, r := range runs {
		known[r.name] = true
	}
	for name := range want {
		if !known[name] {
			return fmt.Errorf("unknown protocol %q", name)
		}
	}

	fmt.Fprintf(stdout, "%-12s %9s %9s %9s\n", "protocol", "forwards", "delivery", "latency")
	for _, r := range runs {
		if cfg.protocols != "all" && !want[r.name] {
			continue
		}
		res, err := r.run()
		if err != nil {
			return fmt.Errorf("%s: %w", r.name, err)
		}
		fmt.Fprintf(stdout, "%-12s %9d %8.1f%% %9d\n",
			r.name, res.ForwardCount(), 100*res.DeliveryRatio(cfg.n), res.Latency)
	}

	if cfg.traffic != "" {
		if err := runTraffic(cfg, nw, oracle, stdout); err != nil {
			return err
		}
	}

	if tracer != nil {
		f, err := os.Create(cfg.trace)
		if err != nil {
			return err
		}
		werr := tracer.WriteJSONL(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("writing trace: %w", werr)
		}
		fmt.Fprintf(stdout, "\ntrace: %s (%d events, %d dropped)\n", cfg.trace, tracer.Len(), tracer.Dropped())
		if manifest != nil {
			manifest.AddOutput(cfg.trace)
		}
	}

	if oracle != nil {
		// Self-healing demo: diff the proactive backbone against the t=0
		// crash state and repair it locally (dead heads re-elected, gateway
		// selections redone only where the wavefront reached).
		alive := oracle.Alive(0)
		base := nw.StaticBackbone(core.Hop25)
		allUp := func(int) bool { return true }
		_, repaired, st, err := backbone.Repair(nw.Graph(), nw.Clustering, base, allUp, alive, backbone.Options{}, nil)
		if err != nil {
			return fmt.Errorf("backbone repair: %w", err)
		}
		fmt.Fprintf(stdout, "\nbackbone repair (2.5-hop, vs t=0 crash state):\n")
		fmt.Fprintf(stdout, "  crashed nodes: %d, dead clusterheads: %d\n", st.Changed, st.DeadHeads)
		fmt.Fprintf(stdout, "  re-elected (wavefront): %d nodes, rehomed: %d, gateway selections redone: %d\n",
			st.Tracked, st.Rehomed, st.Reselected)
		fmt.Fprintf(stdout, "  backbone size: %d -> %d\n", base.Size(), repaired.Size())
	}

	if cfg.wire {
		out := runWire(nw.Graph(), core.Hop25)
		fmt.Fprintf(stdout, "\nwire protocol (2.5-hop): %s\n", out.Counters.String())
		fmt.Fprintf(stdout, "distributed backbone size: %d\n", len(out.Backbone))
	}

	if manifest != nil {
		manifest.AddOutput(cfg.manifest)
		if err := manifest.WriteFile(cfg.manifest); err != nil {
			return fmt.Errorf("writing manifest: %w", err)
		}
	}
	return nil
}

func main() {
	var cfg config
	flag.IntVar(&cfg.n, "n", 100, "number of nodes")
	flag.Float64Var(&cfg.d, "d", 6, "target average node degree")
	flag.Uint64Var(&cfg.seed, "seed", 1, "random seed")
	flag.IntVar(&cfg.source, "source", -1, "broadcast source (-1: random)")
	flag.StringVar(&cfg.protocols, "protocols", "all",
		"comma list: flooding,gossip,mpr,dp,pdp,static-2.5,static-3,dynamic-2.5,dynamic-3,mo-cds,marking,fwd-tree,passive,sba,counter-3,distance (or all)")
	flag.StringVar(&cfg.faults, "faults", "",
		"fault schedule, e.g. 'mtbf=200,mttr=50,burst=0.2:8,part=10:40:x:50' (see internal/faults); applies to every engine-run protocol and prints a backbone-repair report")
	flag.StringVar(&cfg.traffic, "traffic", "",
		"traffic workload spec, e.g. 'proc=poisson,rate=0.2,flows=32' or 'proc=bursty,burst=4,every=10,flows=40,discovery=1' "+
			"(see internal/workload); runs concurrent multi-source broadcasts per backbone and prints a load report")
	flag.BoolVar(&cfg.wire, "wire", false, "also run the distributed wire-protocol construction and print message counts")
	flag.StringVar(&cfg.load, "load", "", "load a topology snapshot (JSON, from topogen -save) instead of generating one")
	flag.BoolVar(&cfg.des, "des", false,
		"run the event-driven calendar engines instead of the scalar round loops (bit-identical output)")
	flag.IntVar(&cfg.workers, "workers", 0,
		"cap the Go scheduler's processor count (0: leave GOMAXPROCS at the default); single runs are sequential either way")
	flag.IntVar(&cfg.buildW, "buildworkers", 0,
		"shard the unit-disk construction and clusterhead election over this many goroutines "+
			"(0/1: sequential; the network is bit-identical for any value)")
	flag.StringVar(&cfg.cpuProf, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&cfg.memProf, "memprofile", "", "write a heap profile to this file after the run")
	flag.StringVar(&cfg.trace, "trace", "",
		"record the broadcast's event stream (JSONL) to this file; requires exactly one -protocols entry")
	flag.StringVar(&cfg.manifest, "manifest", "", "write a run manifest (JSON) to this file")
	cfg.tel.Register(flag.CommandLine)
	flag.Parse()

	if cfg.workers > 0 {
		runtime.GOMAXPROCS(cfg.workers)
	}

	stopProf, err := prof.Start(cfg.cpuProf, cfg.memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "manetsim: %v\n", err)
		os.Exit(1)
	}
	runErr := run(cfg, os.Stdout)
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "manetsim: %v\n", err)
		os.Exit(1)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "manetsim: %v\n", runErr)
		os.Exit(1)
	}
}
