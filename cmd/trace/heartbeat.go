package main

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"clustercast/internal/obs"
	"clustercast/internal/obs/live"
)

// runHeartbeat inspects a heartbeat JSONL stream recorded with -heartbeat
// on any driver: it validates the stream (canonical lines, consecutive
// seq, monotone elapsed), then prints a digest — sampling cadence, memory
// envelope, final progress, the largest counters and the stage table of
// the last record.
func runHeartbeat(path string, stdout io.Writer) error {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	hbs, err := live.ReadHeartbeats(r)
	if err != nil {
		return err
	}
	if len(hbs) == 0 {
		return fmt.Errorf("heartbeat stream is empty")
	}
	last := hbs[len(hbs)-1]
	span := time.Duration(last.ElapsedNs - hbs[0].ElapsedNs)
	var peakHeap uint64
	peakG := 0
	for _, hb := range hbs {
		if hb.HeapInuse > peakHeap {
			peakHeap = hb.HeapInuse
		}
		if hb.Goroutines > peakG {
			peakG = hb.Goroutines
		}
	}

	fmt.Fprintf(stdout, "heartbeats: %d records over %v (validated: canonical, seq 1..%d, monotone)\n",
		len(hbs), span.Round(time.Millisecond), last.Seq)
	if len(hbs) > 1 {
		fmt.Fprintf(stdout, "cadence: %v mean interval\n",
			(span / time.Duration(len(hbs)-1)).Round(time.Millisecond))
	}
	fmt.Fprintf(stdout, "memory: peak heap-in-use %.1f MiB, final total-alloc %.1f MiB, %d GCs, peak goroutines %d\n",
		float64(peakHeap)/(1<<20), float64(last.TotalAlloc)/(1<<20), last.NumGC, peakG)

	if len(last.Progress) > 0 {
		fmt.Fprintln(stdout, "\nfinal progress:")
		for _, p := range last.Progress {
			if p.Total > 0 {
				fmt.Fprintf(stdout, "  %-20s %d/%d (%.1f/s)\n", p.Name, p.Done, p.Total, p.Rate)
			} else {
				fmt.Fprintf(stdout, "  %-20s %d (%.1f/s)\n", p.Name, p.Done, p.Rate)
			}
		}
	}

	if len(last.Counters) > 0 {
		top := append([]obs.MetricValue(nil), last.Counters...)
		sort.Slice(top, func(i, j int) bool {
			if top[i].Value != top[j].Value {
				return top[i].Value > top[j].Value
			}
			return top[i].Name < top[j].Name
		})
		if len(top) > 8 {
			top = top[:8]
		}
		fmt.Fprintf(stdout, "\ntop counters (of %d):\n", len(last.Counters))
		for _, c := range top {
			fmt.Fprintf(stdout, "  %-36s %d\n", c.Name, c.Value)
		}
	}

	if len(last.Stages) > 0 {
		fmt.Fprintln(stdout, "\nstages:")
		fmt.Fprintf(stdout, "  %-24s %8s %14s %14s\n", "stage", "count", "wall", "alloc")
		for _, s := range last.Stages {
			fmt.Fprintf(stdout, "  %-24s %8d %14v %12.1fKiB\n",
				s.Name, s.Count, time.Duration(s.WallNs).Round(time.Microsecond),
				float64(s.AllocBytes)/(1<<10))
		}
	}
	return nil
}
