package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clustercast/internal/obs"
)

// writeTrace records a synthetic event stream to a JSONL file.
func writeTrace(t *testing.T, events func(tr *obs.Tracer)) string {
	t.Helper()
	tr := obs.NewTracer(256)
	events(tr)
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// completeBroadcast records a consistent two-hop broadcast:
// 0 -> {1,2}; 1 relays -> 2 hears a duplicate; one prune, one collision.
func completeBroadcast(tr *obs.Tracer) {
	tr.SetTime(0)
	tr.Send(0, 0, -1)
	tr.GatewaySelect(0, 1)
	tr.CoveragePrune(0, 2, obs.RuleUpstreamSender)
	tr.SetTime(1)
	tr.Deliver(1, 1, 0)
	tr.Deliver(1, 2, 0)
	tr.Send(1, 1, 0)
	tr.SetTime(2)
	tr.Duplicate(2, 2, 1)
	tr.Collision(2, 3)
}

func TestRunCompleteTrace(t *testing.T) {
	path := writeTrace(t, completeBroadcast)
	var out bytes.Buffer
	if err := run(path, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"trace: 8 events",
		"source: 0",
		"forward nodes: 2   reached: 3",
		"sends=2 delivers=2 duplicates=1 collisions=1 gateway-selects=1 prunes=1",
		"upstream-sender",
		"per-hop timeline:",
		"reconciliation: ok",
	} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	// Hop 1 row: 1 send, 2 delivers, cumulative covered 3.
	found := false
	for _, line := range strings.Split(s, "\n") {
		f := strings.Fields(line)
		if len(f) == 6 && f[0] == "1" {
			found = true
			if f[1] != "1" || f[2] != "2" || f[5] != "3" {
				t.Fatalf("hop-1 row wrong: %q", line)
			}
		}
	}
	if !found {
		t.Fatalf("no hop-1 timeline row:\n%s", s)
	}
}

func TestRunInconsistentTrace(t *testing.T) {
	// A relay that never received the packet must be flagged.
	path := writeTrace(t, func(tr *obs.Tracer) {
		tr.Send(0, 0, -1)
		tr.Send(1, 5, 0) // node 5 transmits without a deliver event
	})
	var out bytes.Buffer
	if err := run(path, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "WARN node 5 transmitted but never received") {
		t.Fatalf("missing reconciliation warning:\n%s", out.String())
	}
}

func TestRunTruncatedTrace(t *testing.T) {
	// Overflow a tiny ring: the inspector must report the overwritten
	// prefix instead of flagging bogus inconsistencies.
	tr := obs.NewTracer(4)
	tr.Send(0, 0, -1)
	for v := 1; v <= 8; v++ {
		tr.Deliver(1, v, 0)
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONL(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out bytes.Buffer
	if err := run(path, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "(+5 overwritten by the ring)") {
		t.Fatalf("missing ring-overwrite note:\n%s", s)
	}
	if !strings.Contains(s, "WARN ring overwrote 5 leading events") {
		t.Fatalf("missing partial-trace warning:\n%s", s)
	}
}

func TestRunEmptyTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.jsonl")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("want empty-trace error, got %v", err)
	}
}

func TestRunMalformedTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, &bytes.Buffer{}); err == nil {
		t.Fatal("want parse error on malformed trace")
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run("/does/not/exist.jsonl", &bytes.Buffer{}); err == nil {
		t.Fatal("want error for missing file")
	}
}
