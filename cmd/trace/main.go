// Command trace inspects a broadcast event trace (JSONL) recorded with
// manetsim -trace or scale -trace: it replays the typed event stream into a
// per-hop relay timeline, counts the dynamic backbone's coverage prunes by
// rule, and reconciles the stream against itself (every relay must first
// have been delivered to, every hop's deliveries must come from that hop's
// transmissions).
//
// With -heartbeat it instead inspects a live-telemetry heartbeat stream
// (JSONL from any driver's -heartbeat flag): the stream is schema-validated
// (canonical lines, consecutive seq, monotone elapsed) and digested into
// sampling cadence, memory envelope, progress, top counters and stages.
//
// Usage:
//
//	trace run.jsonl
//	trace -heartbeat hb.jsonl
//	manetsim -n 60 -protocols dynamic-2.5 -trace /dev/stdout | trace -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"clustercast/internal/obs"
)

// hopStat aggregates one simulation time unit of the trace.
type hopStat struct {
	sends      int
	delivers   int
	duplicates int
	collisions int
}

// analysis is the digested trace.
type analysis struct {
	events   int
	dropped  int64 // leading Seq gap: ring-overwritten history
	kinds    map[obs.EventKind]int
	rules    map[obs.PruneRule]int
	hops     map[int]*hopStat
	source   int
	relays   map[int]bool // distinct sending nodes
	received map[int]bool // source + delivered nodes
}

// analyze folds the event stream.
func analyze(events []obs.Event) *analysis {
	a := &analysis{
		events:   len(events),
		kinds:    make(map[obs.EventKind]int),
		rules:    make(map[obs.PruneRule]int),
		hops:     make(map[int]*hopStat),
		source:   -1,
		relays:   make(map[int]bool),
		received: make(map[int]bool),
	}
	if len(events) > 0 {
		a.dropped = events[0].Seq
	}
	hop := func(t int) *hopStat {
		h := a.hops[t]
		if h == nil {
			h = &hopStat{}
			a.hops[t] = h
		}
		return h
	}
	for _, ev := range events {
		a.kinds[ev.Kind]++
		switch ev.Kind {
		case obs.EvSend:
			hop(ev.T).sends++
			a.relays[ev.Node] = true
			if ev.Peer == -1 && a.source == -1 {
				a.source = ev.Node
				a.received[ev.Node] = true
			}
		case obs.EvDeliver:
			hop(ev.T).delivers++
			a.received[ev.Node] = true
		case obs.EvDuplicate:
			hop(ev.T).duplicates++
		case obs.EvCollision:
			hop(ev.T).collisions++
		case obs.EvCoveragePrune:
			a.rules[ev.Rule]++
		}
	}
	return a
}

// reconcile cross-checks the stream's internal consistency; a complete
// trace of one broadcast satisfies all of these by construction.
func (a *analysis) reconcile() []string {
	var problems []string
	if a.dropped > 0 {
		problems = append(problems, fmt.Sprintf("ring overwrote %d leading events; counts below are partial", a.dropped))
		return problems // a truncated stream legitimately fails the checks below
	}
	for v := range a.relays {
		if !a.received[v] {
			problems = append(problems, fmt.Sprintf("node %d transmitted but never received", v))
		}
	}
	if a.source == -1 && a.kinds[obs.EvSend] > 0 {
		problems = append(problems, "no source transmission (send with peer=-1) recorded")
	}
	if got, want := a.kinds[obs.EvDeliver], len(a.received)-1; a.source != -1 && got != want {
		problems = append(problems, fmt.Sprintf("%d deliver events for %d non-source receivers", got, want))
	}
	return problems
}

// run executes the inspector against the given writer.
func run(path string, stdout io.Writer) error {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	events, err := obs.ReadJSONL(r)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("trace is empty")
	}
	a := analyze(events)

	fmt.Fprintf(stdout, "trace: %d events", a.events)
	if a.dropped > 0 {
		fmt.Fprintf(stdout, " (+%d overwritten by the ring)", a.dropped)
	}
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "source: %d\n", a.source)
	fmt.Fprintf(stdout, "forward nodes: %d   reached: %d\n", len(a.relays), len(a.received))
	fmt.Fprintf(stdout, "sends=%d delivers=%d duplicates=%d collisions=%d gateway-selects=%d prunes=%d\n",
		a.kinds[obs.EvSend], a.kinds[obs.EvDeliver], a.kinds[obs.EvDuplicate],
		a.kinds[obs.EvCollision], a.kinds[obs.EvGatewaySelect], a.kinds[obs.EvCoveragePrune])

	if a.kinds[obs.EvCoveragePrune] > 0 {
		fmt.Fprintln(stdout, "\ncoverage prunes by rule:")
		for _, rule := range []obs.PruneRule{obs.RuleUpstreamSender, obs.RulePiggybackedSet, obs.RuleSecondHopAdjacent} {
			fmt.Fprintf(stdout, "  %-20s %d\n", rule.String(), a.rules[rule])
		}
	}

	times := make([]int, 0, len(a.hops))
	for t := range a.hops {
		times = append(times, t)
	}
	sort.Ints(times)
	fmt.Fprintln(stdout, "\nper-hop timeline:")
	fmt.Fprintf(stdout, "  %4s %7s %9s %11s %11s %9s\n", "hop", "sends", "delivers", "duplicates", "collisions", "covered")
	covered := 0
	if a.source != -1 {
		covered = 1
	}
	for _, t := range times {
		h := a.hops[t]
		covered += h.delivers
		fmt.Fprintf(stdout, "  %4d %7d %9d %11d %11d %9d\n", t, h.sends, h.delivers, h.duplicates, h.collisions, covered)
	}

	if problems := a.reconcile(); len(problems) > 0 {
		fmt.Fprintln(stdout, "\nreconciliation:")
		for _, p := range problems {
			fmt.Fprintf(stdout, "  WARN %s\n", p)
		}
	} else {
		fmt.Fprintln(stdout, "\nreconciliation: ok")
	}
	return nil
}

func main() {
	var hbPath string
	flag.StringVar(&hbPath, "heartbeat", "",
		"inspect a heartbeat stream (JSONL from a driver's -heartbeat flag) instead of an event trace")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: trace <file.jsonl | -> | trace -heartbeat <file.jsonl | ->\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if hbPath != "" {
		if flag.NArg() != 0 {
			flag.Usage()
			os.Exit(2)
		}
		if err := runHeartbeat(hbPath, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "trace: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "trace: %v\n", err)
		os.Exit(1)
	}
}
