// Command topogen generates random MANET topologies and dumps them as
// CSV (node positions + edges), Graphviz DOT (with the backbone
// highlighted), a one-line summary, or a JSON snapshot reloadable by
// manetsim -load.
//
// Usage:
//
//	topogen -n 50 -d 6 -seed 3 -format dot > net.dot
//	topogen -n 100 -d 18 -format csv
//	topogen -n 80 -d 6 -placement grid -format summary
//	topogen -n 60 -d 10 -save net.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"clustercast/internal/core"
	"clustercast/internal/geom"
	"clustercast/internal/rng"
	"clustercast/internal/topology"
)

// config holds the parsed command line.
type config struct {
	n         int
	d         float64
	seed      uint64
	side      float64
	format    string
	placement string
	save      string
}

// generate builds the topology per the configuration.
func generate(cfg config) (*topology.Network, error) {
	bounds := geom.Square(cfg.side)
	r := rng.NewLabeled(cfg.seed, "topogen")
	radius := geom.RangeForDegree(cfg.n, bounds.Area(), cfg.d)
	switch cfg.placement {
	case "uniform":
		return topology.Generate(topology.Config{
			N: cfg.n, Bounds: bounds, AvgDegree: cfg.d, RequireConnected: true,
		}, r)
	case "grid":
		return topology.GridPlacement(cfg.n, bounds, radius, radius/4, r), nil
	case "clustered":
		return topology.ClusteredPlacement(cfg.n, 4, bounds, radius, cfg.side/10, r), nil
	default:
		return nil, fmt.Errorf("unknown placement %q", cfg.placement)
	}
}

// run executes the command against the given writer.
func run(cfg config, stdout io.Writer) error {
	nw, err := generate(cfg)
	if err != nil {
		return err
	}

	if cfg.save != "" {
		f, err := os.Create(cfg.save)
		if err != nil {
			return err
		}
		if err := nw.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	cnw := core.FromTopology(nw)
	switch cfg.format {
	case "summary":
		fmt.Fprintln(stdout, cnw.Summarize())
	case "csv":
		fmt.Fprintln(stdout, "id,x,y")
		for i, p := range nw.Positions {
			fmt.Fprintf(stdout, "%d,%.4f,%.4f\n", i, p.X, p.Y)
		}
		fmt.Fprintln(stdout, "u,v")
		for _, e := range nw.G.Edges() {
			fmt.Fprintf(stdout, "%d,%d\n", e[0], e[1])
		}
	case "dot":
		backbone := cnw.StaticBackbone(core.Hop25)
		fmt.Fprint(stdout, nw.G.DOT("manet", backbone.Nodes))
	default:
		return fmt.Errorf("unknown format %q", cfg.format)
	}
	return nil
}

func main() {
	var cfg config
	flag.IntVar(&cfg.n, "n", 50, "number of nodes")
	flag.Float64Var(&cfg.d, "d", 6, "target average node degree")
	flag.Uint64Var(&cfg.seed, "seed", 1, "random seed")
	flag.Float64Var(&cfg.side, "side", 100, "side of the square working space")
	flag.StringVar(&cfg.format, "format", "summary", "output: csv, dot, summary")
	flag.StringVar(&cfg.placement, "placement", "uniform", "node placement: uniform, grid, clustered")
	flag.StringVar(&cfg.save, "save", "", "also write the topology snapshot (JSON) to this file")
	flag.Parse()

	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
		os.Exit(1)
	}
}
