package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clustercast/internal/topology"
)

func baseCfg() config {
	return config{n: 30, d: 8, seed: 3, side: 100, format: "summary", placement: "uniform"}
}

func TestRunSummary(t *testing.T) {
	var out bytes.Buffer
	if err := run(baseCfg(), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "n=30") {
		t.Fatalf("summary missing node count:\n%s", out.String())
	}
}

func TestRunCSV(t *testing.T) {
	var out bytes.Buffer
	cfg := baseCfg()
	cfg.format = "csv"
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.HasPrefix(s, "id,x,y\n") || !strings.Contains(s, "u,v\n") {
		t.Fatalf("CSV sections missing:\n%s", s[:60])
	}
}

func TestRunDOT(t *testing.T) {
	var out bytes.Buffer
	cfg := baseCfg()
	cfg.format = "dot"
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "graph manet {") {
		t.Fatalf("DOT output wrong:\n%s", out.String()[:40])
	}
	if !strings.Contains(out.String(), "fillcolor=black") {
		t.Fatal("backbone highlighting missing")
	}
}

func TestRunPlacements(t *testing.T) {
	for _, placement := range []string{"grid", "clustered"} {
		var out bytes.Buffer
		cfg := baseCfg()
		cfg.placement = placement
		if err := run(cfg, &out); err != nil {
			t.Fatalf("%s: %v", placement, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	cfg := baseCfg()
	cfg.placement = "orbital"
	if err := run(cfg, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "unknown placement") {
		t.Fatalf("want placement error, got %v", err)
	}
	cfg = baseCfg()
	cfg.format = "png"
	if err := run(cfg, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "unknown format") {
		t.Fatalf("want format error, got %v", err)
	}
}

func TestRunSaveRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "net.json")
	cfg := baseCfg()
	cfg.save = path
	if err := run(cfg, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	nw, err := topology.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if nw.N() != 30 {
		t.Fatalf("snapshot round trip lost nodes: %d", nw.N())
	}
}
