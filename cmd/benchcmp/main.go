// Command benchcmp diffs a `go test -bench` run against the checked-in
// benchmark baselines (BENCH_PR*.json) and warns when ns/op or allocs/op
// regressed beyond a threshold.
//
// Usage:
//
//	go test -run xxx -bench . -benchtime 1s . | go run ./cmd/benchcmp -baseline BENCH_PR2.json
//	go run ./cmd/benchcmp -baseline BENCH_PR2.json -threshold 0.10 bench-output.txt
//
// The baseline's "after_*" fields are the expectation: they record what the
// benchmarks measured when the PR landed. Exit status is 0 even with
// warnings unless -strict is set.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// baselineEntry is one benchmark's recorded numbers. Pointers distinguish
// "not recorded" from zero.
type baselineEntry struct {
	Name        string   `json:"name"`
	AfterNsOp   *float64 `json:"after_ns_op"`
	AfterAllocs *float64 `json:"after_allocs_op"`
}

// baselineFile mirrors the BENCH_PR*.json layout.
type baselineFile struct {
	Headline *baselineEntry  `json:"headline"`
	Micro    []baselineEntry `json:"micro"`
}

// entries flattens headline + micro into one lookup list.
func (f *baselineFile) entries() []baselineEntry {
	var out []baselineEntry
	if f.Headline != nil && f.Headline.Name != "" {
		out = append(out, *f.Headline)
	}
	out = append(out, f.Micro...)
	return out
}

// measurement is one parsed benchmark result line.
type measurement struct {
	nsOp     float64
	allocsOp float64
	hasNs    bool
	hasAlloc bool
}

// gomaxprocsSuffix strips the trailing "-N" GOMAXPROCS suffix Go appends to
// benchmark names on multi-core runs.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts ns/op and allocs/op per benchmark from `go test
// -bench` output.
func parseBench(r io.Reader) (map[string]measurement, error) {
	out := map[string]measurement{}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		var m measurement
		// fields[1] is the iteration count; after it come (value, unit) pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.nsOp, m.hasNs = v, true
			case "allocs/op":
				m.allocsOp, m.hasAlloc = v, true
			}
		}
		if m.hasNs || m.hasAlloc {
			out[name] = m
		}
	}
	return out, sc.Err()
}

// compare prints one line per baseline entry found in the measurements and
// returns the number of regressions beyond the threshold.
func compare(w io.Writer, baseline []baselineEntry, got map[string]measurement, threshold float64) int {
	regressions := 0
	check := func(name, metric string, want, have float64) {
		ratio := 0.0
		if want > 0 {
			ratio = have/want - 1
		}
		status := "ok"
		if ratio > threshold {
			status = fmt.Sprintf("WARN +%.0f%% regression", ratio*100)
			regressions++
		} else if ratio < -threshold {
			status = fmt.Sprintf("improved %.0f%%", -ratio*100)
		}
		fmt.Fprintf(w, "%-60s %-10s baseline %14.1f  now %14.1f  %s\n", name, metric, want, have, status)
	}
	for _, e := range baseline {
		m, ok := got[e.Name]
		if !ok {
			fmt.Fprintf(w, "%-60s (not measured in this run)\n", e.Name)
			continue
		}
		if e.AfterNsOp != nil && m.hasNs {
			check(e.Name, "ns/op", *e.AfterNsOp, m.nsOp)
		}
		if e.AfterAllocs != nil && m.hasAlloc {
			// Allocation counts are deterministic; any increase beyond the
			// threshold (rounding headroom for tiny counts) is a regression.
			check(e.Name, "allocs/op", *e.AfterAllocs, m.allocsOp)
		}
	}
	return regressions
}

// scaleName matches the scaling benchmarks' "Benchmark<Family>/n=<N>/<stage>"
// naming, capturing family, network size, and stage. The families are the
// PR1–PR3 Scale* kernels, the PR6 bit-parallel replication curve
// (BenchmarkReplicateBatch), the PR7 event-calendar engines
// (BenchmarkDESMAC/DESWire/DESTimed), and the PR8 sharded construction
// stages (BenchmarkShardedCoverage/ParallelCluster/ParallelTopology), and
// the PR10 multi-source traffic curve (BenchmarkWorkloadThroughput) — all
// share the /n=<N>/<variant> shape.
var scaleName = regexp.MustCompile(`^Benchmark(Scale\w+|ReplicateBatch\w*|DES\w*|ShardedCoverage\w*|ParallelCluster\w*|ParallelTopology\w*|Workload\w*)/n=(\d+)/(.+)$`)

// scaleCurves prints, for every Scale* benchmark family and stage seen in
// the baseline or the current run, the ns/op scaling curve by network size
// n — baseline vs now, with the speedup factor per point. This is the view
// that makes size-dependent regressions visible: a kernel can hold its
// n=1000 number while quietly going superlinear at n=50000.
func scaleCurves(w io.Writer, baseline []baselineEntry, got map[string]measurement) {
	type point struct {
		base, now float64
		hasBase   bool
		hasNow    bool
	}
	curves := map[string]map[int]*point{} // "ScaleKernels/static25" -> n -> point
	at := func(curve string, n int) *point {
		if curves[curve] == nil {
			curves[curve] = map[int]*point{}
		}
		if curves[curve][n] == nil {
			curves[curve][n] = &point{}
		}
		return curves[curve][n]
	}
	for _, e := range baseline {
		if e.AfterNsOp == nil {
			continue
		}
		if m := scaleName.FindStringSubmatch(e.Name); m != nil {
			n, _ := strconv.Atoi(m[2])
			p := at(m[1]+"/"+m[3], n)
			p.base, p.hasBase = *e.AfterNsOp, true
		}
	}
	for name, meas := range got {
		if !meas.hasNs {
			continue
		}
		if m := scaleName.FindStringSubmatch(name); m != nil {
			n, _ := strconv.Atoi(m[2])
			p := at(m[1]+"/"+m[3], n)
			p.now, p.hasNow = meas.nsOp, true
		}
	}
	if len(curves) == 0 {
		return
	}
	names := make([]string, 0, len(curves))
	for name := range curves {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "\nscaling curves (ns/op by n):\n")
	for _, name := range names {
		fmt.Fprintf(w, "%s:\n", name)
		ns := make([]int, 0, len(curves[name]))
		for n := range curves[name] {
			ns = append(ns, n)
		}
		sort.Ints(ns)
		for _, n := range ns {
			p := curves[name][n]
			switch {
			case p.hasBase && p.hasNow:
				fmt.Fprintf(w, "  n=%-8d baseline %14.0f  now %14.0f  (%.2fx)\n",
					n, p.base, p.now, p.base/p.now)
			case p.hasNow:
				fmt.Fprintf(w, "  n=%-8d baseline %14s  now %14.0f\n", n, "-", p.now)
			default:
				fmt.Fprintf(w, "  n=%-8d baseline %14.0f  now %14s\n", n, p.base, "(not measured)")
			}
		}
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchcmp", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "BENCH_PR2.json", "baseline JSON file to compare against")
	threshold := fs.Float64("threshold", 0.10, "relative regression considered noteworthy (0.10 = 10%)")
	strict := fs.Bool("strict", false, "exit non-zero when a regression exceeds the threshold")
	if err := fs.Parse(args); err != nil {
		return err
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		return err
	}
	var bf baselineFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return fmt.Errorf("parse %s: %w", *baselinePath, err)
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	got, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(got) == 0 {
		return fmt.Errorf("no benchmark result lines found in input")
	}

	n := compare(stdout, bf.entries(), got, *threshold)
	scaleCurves(stdout, bf.entries(), got)
	if n > 0 {
		fmt.Fprintf(stdout, "\n%d benchmark(s) regressed more than %.0f%% vs %s\n", n, *threshold*100, *baselinePath)
		if *strict {
			return fmt.Errorf("%d regression(s)", n)
		}
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchcmp: %v\n", err)
		os.Exit(1)
	}
}
