package main

import (
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: clustercast
BenchmarkSweepPoint   	     417	   2767097 ns/op	     184 B/op	       3 allocs/op
BenchmarkMobilityStep/sparse-10pct/incremental-8         	   73852	     16380 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig6/d=6/static-2.5hop	     100	    500000 ns/op	        21.4 cds-size
PASS
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	m, ok := got["BenchmarkSweepPoint"]
	if !ok || m.nsOp != 2767097 || m.allocsOp != 3 {
		t.Fatalf("SweepPoint parsed as %+v (ok=%v)", m, ok)
	}
	// The -8 GOMAXPROCS suffix must be stripped.
	if _, ok := got["BenchmarkMobilityStep/sparse-10pct/incremental"]; !ok {
		t.Fatalf("suffixed benchmark name not normalized: %v", got)
	}
	if m := got["BenchmarkFig6/d=6/static-2.5hop"]; !m.hasNs || m.hasAlloc {
		t.Fatalf("custom-metric line parsed wrong: %+v", m)
	}
}

func f(v float64) *float64 { return &v }

func TestCompareFlagsRegressions(t *testing.T) {
	baseline := []baselineEntry{
		{Name: "BenchmarkSweepPoint", AfterNsOp: f(2500000), AfterAllocs: f(3)},
		{Name: "BenchmarkMobilityStep/sparse-10pct/incremental", AfterNsOp: f(40000)},
		{Name: "BenchmarkNotRun", AfterNsOp: f(1)},
	}
	got, err := parseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	n := compare(&out, baseline, got, 0.10)
	if n != 1 {
		t.Fatalf("want exactly the ns/op regression flagged, got %d:\n%s", n, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "WARN") {
		t.Fatalf("missing WARN:\n%s", text)
	}
	if !strings.Contains(text, "improved") {
		t.Fatalf("the 2.4x faster mobility step should report as improved:\n%s", text)
	}
	if !strings.Contains(text, "not measured") {
		t.Fatalf("absent benchmark must be called out:\n%s", text)
	}
}

func TestCompareWithinNoise(t *testing.T) {
	baseline := []baselineEntry{
		{Name: "BenchmarkSweepPoint", AfterNsOp: f(2767097), AfterAllocs: f(3)},
	}
	got, _ := parseBench(strings.NewReader(benchOutput))
	var out strings.Builder
	if n := compare(&out, baseline, got, 0.10); n != 0 {
		t.Fatalf("identical numbers flagged as regression:\n%s", out.String())
	}
}
