package main

import (
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: clustercast
BenchmarkSweepPoint   	     417	   2767097 ns/op	     184 B/op	       3 allocs/op
BenchmarkMobilityStep/sparse-10pct/incremental-8         	   73852	     16380 ns/op	       0 B/op	       0 allocs/op
BenchmarkFig6/d=6/static-2.5hop	     100	    500000 ns/op	        21.4 cds-size
PASS
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	m, ok := got["BenchmarkSweepPoint"]
	if !ok || m.nsOp != 2767097 || m.allocsOp != 3 {
		t.Fatalf("SweepPoint parsed as %+v (ok=%v)", m, ok)
	}
	// The -8 GOMAXPROCS suffix must be stripped.
	if _, ok := got["BenchmarkMobilityStep/sparse-10pct/incremental"]; !ok {
		t.Fatalf("suffixed benchmark name not normalized: %v", got)
	}
	if m := got["BenchmarkFig6/d=6/static-2.5hop"]; !m.hasNs || m.hasAlloc {
		t.Fatalf("custom-metric line parsed wrong: %+v", m)
	}
}

func f(v float64) *float64 { return &v }

func TestCompareFlagsRegressions(t *testing.T) {
	baseline := []baselineEntry{
		{Name: "BenchmarkSweepPoint", AfterNsOp: f(2500000), AfterAllocs: f(3)},
		{Name: "BenchmarkMobilityStep/sparse-10pct/incremental", AfterNsOp: f(40000)},
		{Name: "BenchmarkNotRun", AfterNsOp: f(1)},
	}
	got, err := parseBench(strings.NewReader(benchOutput))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	n := compare(&out, baseline, got, 0.10)
	if n != 1 {
		t.Fatalf("want exactly the ns/op regression flagged, got %d:\n%s", n, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "WARN") {
		t.Fatalf("missing WARN:\n%s", text)
	}
	if !strings.Contains(text, "improved") {
		t.Fatalf("the 2.4x faster mobility step should report as improved:\n%s", text)
	}
	if !strings.Contains(text, "not measured") {
		t.Fatalf("absent benchmark must be called out:\n%s", text)
	}
}

func TestScaleCurvesGroupByN(t *testing.T) {
	baseline := []baselineEntry{
		{Name: "BenchmarkScaleKernels/n=1000/dynamic25", AfterNsOp: f(1200000)},
		{Name: "BenchmarkScaleKernels/n=10000/dynamic25", AfterNsOp: f(18000000)},
		{Name: "BenchmarkScaleKernels/n=50000/dynamic25", AfterNsOp: f(220000000)},
		{Name: "BenchmarkSweepPoint", AfterNsOp: f(2500000)}, // non-scale: excluded
	}
	run := `BenchmarkScaleKernels/n=1000/dynamic25     10   900000 ns/op
BenchmarkScaleKernels/n=10000/dynamic25    10  9000000 ns/op
BenchmarkScaleKernels/n=100000/dynamic25   10  99000000 ns/op
PASS
`
	got, err := parseBench(strings.NewReader(run))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	scaleCurves(&out, baseline, got)
	text := out.String()
	if !strings.Contains(text, "ScaleKernels/dynamic25:") {
		t.Fatalf("curve header missing:\n%s", text)
	}
	// Points sorted by n, with the speedup factor where both sides exist.
	i1, i10, i50, i100 := strings.Index(text, "n=1000 "), strings.Index(text, "n=10000 "),
		strings.Index(text, "n=50000 "), strings.Index(text, "n=100000 ")
	if i1 < 0 || i10 < 0 || i50 < 0 || i100 < 0 || !(i1 < i10 && i10 < i50 && i50 < i100) {
		t.Fatalf("points missing or out of order (%d %d %d %d):\n%s", i1, i10, i50, i100, text)
	}
	if !strings.Contains(text, "(2.00x)") {
		t.Fatalf("2x speedup at n=10000 not reported:\n%s", text)
	}
	if !strings.Contains(text, "(not measured)") {
		t.Fatalf("baseline-only n=50000 point must say not measured:\n%s", text)
	}
	if strings.Contains(text, "SweepPoint") {
		t.Fatalf("non-scale benchmark leaked into curves:\n%s", text)
	}
}

// TestScaleCurvesIncludeReplicateBatch: the PR6 bit-parallel replication
// benchmark renders as a scaling curve next to the Scale* kernel families.
func TestScaleCurvesIncludeReplicateBatch(t *testing.T) {
	baseline := []baselineEntry{
		{Name: "BenchmarkReplicateBatch/n=10000/flooding-batch64", AfterNsOp: f(32000000)},
		{Name: "BenchmarkReplicateBatch/n=10000/flooding-scalar", AfterNsOp: f(254000000)},
	}
	run := `BenchmarkReplicateBatch/n=10000/flooding-batch64    10   16000000 ns/op
BenchmarkReplicateBatch/n=10000/flooding-scalar     10  254000000 ns/op
PASS
`
	got, err := parseBench(strings.NewReader(run))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	scaleCurves(&out, baseline, got)
	text := out.String()
	if !strings.Contains(text, "ReplicateBatch/flooding-batch64:") ||
		!strings.Contains(text, "ReplicateBatch/flooding-scalar:") {
		t.Fatalf("ReplicateBatch curves missing:\n%s", text)
	}
	if !strings.Contains(text, "(2.00x)") {
		t.Fatalf("batch-vs-baseline speedup not reported:\n%s", text)
	}
}

func TestCompareWithinNoise(t *testing.T) {
	baseline := []baselineEntry{
		{Name: "BenchmarkSweepPoint", AfterNsOp: f(2767097), AfterAllocs: f(3)},
	}
	got, _ := parseBench(strings.NewReader(benchOutput))
	var out strings.Builder
	if n := compare(&out, baseline, got, 0.10); n != 0 {
		t.Fatalf("identical numbers flagged as regression:\n%s", out.String())
	}
}
