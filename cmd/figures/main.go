// Command figures regenerates every table and figure of the paper's
// evaluation (and this repo's ablations) and prints them as CSV, markdown,
// an ASCII chart, or JSON.
//
// Usage:
//
//	figures -fig 6a                 # Figure 6(a): CDS size, d=6
//	figures -fig all -format md     # everything, markdown tables
//	figures -fig 7b -quick          # fast replication rule (smoke runs)
//	figures -fig msg -format chart  # message-optimality ablation
//	figures -fig all -out results/  # also write one CSV per figure
//
// Figures: 6a 6b 7a 7b 8a 8b (the paper) plus the ablations listed by
// -fig help. The paper's replication rule (99% CI within ±5%) is the
// default; -quick switches to a light rule for smoke testing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"clustercast/internal/experiment"
	"clustercast/internal/obs"
	"clustercast/internal/obs/live"
	"clustercast/internal/prof"
	"clustercast/internal/stats"
)

// config holds the parsed command line.
type config struct {
	fig      string
	format   string
	seed     uint64
	quick    bool
	maxN     int
	outDir   string
	workers  int
	buildW   int
	batch    bool
	des      bool
	cpuProf  string
	memProf  string
	manifest string
	tel      live.Flags
}

// figureOrder is the canonical listing: the paper's figures first, then
// the ablations.
var figureOrder = []string{
	"6a", "6b", "7a", "7b", "8a", "8b",
	"ratio", "msg", "baselines", "tiebreak", "mobility", "delivery",
	"sicds", "lossy", "maint", "passive", "reliable", "pruning",
	"routing", "storm", "hier", "collision", "election", "covcost", "amort",
	"faults", "burst", "gossip", "traffic", "discovery",
}

// runners builds the figure constructors for a given configuration.
func runners(cfg config, rule stats.StopRule, ns []int) map[string]func() *experiment.Figure {
	seed := cfg.seed
	return map[string]func() *experiment.Figure{
		"6a":        func() *experiment.Figure { return experiment.Fig6(6, ns, seed, rule) },
		"6b":        func() *experiment.Figure { return experiment.Fig6(18, ns, seed, rule) },
		"7a":        func() *experiment.Figure { return experiment.Fig7(6, ns, seed, rule) },
		"7b":        func() *experiment.Figure { return experiment.Fig7(18, ns, seed, rule) },
		"8a":        func() *experiment.Figure { return experiment.Fig8(6, ns, seed, rule) },
		"8b":        func() *experiment.Figure { return experiment.Fig8(18, ns, seed, rule) },
		"ratio":     func() *experiment.Figure { return experiment.ApproxRatio([]int{10, 14, 18, 22}, 5, seed, rule) },
		"msg":       func() *experiment.Figure { return experiment.MessageComplexity(ns, 6, seed, rule) },
		"baselines": func() *experiment.Figure { return experiment.Baselines(ns, 18, seed, rule) },
		"tiebreak":  func() *experiment.Figure { return experiment.TieBreak(ns, 6, seed, rule) },
		"mobility": func() *experiment.Figure {
			return experiment.Mobility([]float64{1, 2, 5, 10, 20}, 60, 8, 10, seed, rule)
		},
		"delivery": func() *experiment.Figure { return experiment.Delivery(ns, 6, seed, rule) },
		"sicds":    func() *experiment.Figure { return experiment.SICDS(ns, 6, seed, rule) },
		"lossy": func() *experiment.Figure {
			return experiment.Lossy([]float64{0, 0.05, 0.1, 0.2, 0.3, 0.5}, 60, 10, seed, rule)
		},
		"maint": func() *experiment.Figure {
			return experiment.Maintenance([]float64{1, 2, 5, 10, 20}, 60, 8, 10, seed, rule)
		},
		"passive": func() *experiment.Figure { return experiment.PassiveConvergence(6, 80, 18, seed, rule) },
		"reliable": func() *experiment.Figure {
			return experiment.Reliable([]float64{0, 0.1, 0.2, 0.3, 0.4}, 60, 10, seed, rule)
		},
		"pruning": func() *experiment.Figure {
			return experiment.Pruning([]int{0, 2, 4, 8, 16}, 80, 18, seed, rule)
		},
		"routing": func() *experiment.Figure { return experiment.Routing(ns, 12, seed, rule) },
		"storm": func() *experiment.Figure {
			return experiment.Storm([]float64{4, 6, 10, 14, 18, 24}, 80, seed, rule)
		},
		"hier": func() *experiment.Figure { return experiment.Hierarchy(ns, 8, 2, seed, rule) },
		"collision": func() *experiment.Figure {
			return experiment.Collision([]float64{6, 10, 14, 18, 24}, 60, 0, seed, rule)
		},
		"election": func() *experiment.Figure { return experiment.Election(ns, 18, seed, rule) },
		"covcost":  func() *experiment.Figure { return experiment.CoverageCost(ns, 18, seed, rule) },
		"amort": func() *experiment.Figure {
			return experiment.Amortized([]int{1, 2, 5, 10, 20, 50}, 80, 18, seed, rule)
		},
		"faults": func() *experiment.Figure {
			return experiment.Faults([]float64{0, 0.05, 0.1, 0.2, 0.3, 0.4}, 60, 10, seed, rule)
		},
		"burst": func() *experiment.Figure {
			return experiment.Burstiness([]float64{1, 2, 4, 8, 16, 32}, 0.2, 60, 10, seed, rule)
		},
		"gossip": func() *experiment.Figure {
			return experiment.GossipAblation(
				[]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.65, 0.8, 1},
				[]float64{0, 0.1, 0.3}, 60, 10, seed, rule)
		},
		"traffic": func() *experiment.Figure {
			return experiment.Traffic([]float64{0.05, 0.1, 0.2, 0.4, 0.8}, 60, 10, 32, 3, seed, rule)
		},
		"discovery": func() *experiment.Figure {
			return experiment.Discovery([]float64{0.05, 0.1, 0.2, 0.4, 0.8}, 60, 10, 24, 3, seed, rule)
		},
	}
}

// run executes the command against the given writers; exit-worthy problems
// come back as errors, diagnostics (missing-point causes) go to stderr. The
// named return lets the deferred telemetry shutdown surface its error.
func run(cfg config, stdout, stderr io.Writer) (retErr error) {
	if cfg.outDir != "" {
		if err := os.MkdirAll(cfg.outDir, 0o755); err != nil {
			return err
		}
		// A figure directory gets a manifest next to its CSVs by default.
		if cfg.manifest == "" {
			cfg.manifest = filepath.Join(cfg.outDir, "manifest.json")
		}
	}
	var manifest *obs.Manifest
	if cfg.manifest != "" || cfg.tel.Active() {
		obs.Enable()
		defer obs.Disable()
		obs.Default.Reset()
		obs.ResetStages()
	}
	// Telemetry status goes to stderr: stdout carries the figure data.
	sess, err := cfg.tel.Start(stderr)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(); retErr == nil {
			retErr = cerr
		}
	}()
	if cfg.manifest != "" {
		manifest = obs.NewManifest("figures")
		manifest.Seed = cfg.seed
		manifest.Workers = cfg.workers
		manifest.Param("fig", cfg.fig).Param("format", cfg.format).
			Param("quick", cfg.quick).Param("maxn", cfg.maxN).Param("buildworkers", cfg.buildW)
	}
	experiment.SetParallelism(cfg.workers)
	experiment.SetBuildWorkers(cfg.buildW)
	experiment.SetBatchReplication(cfg.batch)
	experiment.SetDES(cfg.des)
	rule := stats.PaperRule()
	if cfg.quick {
		rule = stats.StopRule{Confidence: 0.95, RelHalfWidth: 0.15, MinReplicates: 10, MaxReplicates: 40}
	}
	var ns []int
	for _, n := range experiment.DefaultNs() {
		if n <= cfg.maxN {
			ns = append(ns, n)
		}
	}
	if len(ns) == 0 {
		return fmt.Errorf("maxn %d leaves no network sizes to sweep", cfg.maxN)
	}

	all := runners(cfg, rule, ns)
	var picks []string
	if cfg.fig == "all" {
		picks = figureOrder
	} else {
		for _, f := range strings.Split(cfg.fig, ",") {
			f = strings.TrimSpace(f)
			if _, ok := all[f]; !ok {
				return fmt.Errorf("unknown figure %q (known: %s, all)", f, strings.Join(figureOrder, " "))
			}
			picks = append(picks, f)
		}
	}

	// Figure-level progress on top of the sweep-point meter the experiment
	// package maintains: heartbeats show both "which figure" and "how far
	// into its points".
	progFigs := obs.NewProgress("figures.picks")
	progFigs.AddTotal(int64(len(picks)))
	for _, name := range picks {
		f := all[name]()
		progFigs.Step()
		warnMissing(stderr, f)
		if cfg.outDir != "" {
			path := filepath.Join(cfg.outDir, f.ID+".csv")
			if err := os.WriteFile(path, []byte(f.CSV()), 0o644); err != nil {
				return err
			}
			if manifest != nil {
				manifest.AddOutput(path)
			}
		}
		switch cfg.format {
		case "csv":
			fmt.Fprintf(stdout, "# %s — %s\n%s\n", f.ID, f.Title, f.CSV())
		case "md":
			fmt.Fprintln(stdout, f.Markdown())
		case "chart":
			fmt.Fprintln(stdout, f.ASCIIChart(16))
		case "json":
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", " ")
			if err := enc.Encode(f); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown format %q", cfg.format)
		}
	}
	if manifest != nil {
		manifest.AddOutput(cfg.manifest)
		if err := manifest.WriteFile(cfg.manifest); err != nil {
			return fmt.Errorf("writing manifest: %w", err)
		}
	}
	return nil
}

// warnMissing diagnoses missing points on stderr. Renderers mark a failed
// measurement as "n/a" / an empty CSV cell; without this, the topology
// generator's descriptive error (attempt cap exhausted, and why) never
// reached the user.
func warnMissing(stderr io.Writer, f *experiment.Figure) {
	missing := 0
	for _, s := range f.Series {
		for _, p := range s.Points {
			if p.Missing() {
				missing++
			}
		}
	}
	if missing == 0 {
		return
	}
	fmt.Fprintf(stderr, "figures: warning: %s has %d missing point(s)\n", f.ID, missing)
	if err := experiment.TakeSampleError(); err != nil {
		fmt.Fprintf(stderr, "figures: warning: first sampling failure: %v\n", err)
	}
}

func main() {
	var cfg config
	flag.StringVar(&cfg.fig, "fig", "all",
		"figure(s) to regenerate, comma-separated: "+strings.Join(figureOrder, " ")+", or all")
	flag.StringVar(&cfg.format, "format", "md", "output format: csv, md, chart, json")
	flag.Uint64Var(&cfg.seed, "seed", 2003, "root random seed")
	flag.BoolVar(&cfg.quick, "quick", false, "use a light replication rule instead of the paper's 99% CI ±5%")
	flag.IntVar(&cfg.maxN, "maxn", 100, "largest network size in the sweep")
	flag.StringVar(&cfg.outDir, "out", "", "also write each figure as <dir>/<id>.csv")
	flag.IntVar(&cfg.workers, "workers", 0,
		"replication worker count (0: GOMAXPROCS); results are bit-identical for any value")
	flag.IntVar(&cfg.buildW, "buildworkers", 0,
		"construction-stage shards inside each replicate — unit-disk sweep, clusterhead "+
			"election, coverage digest (0: sequential reference paths; bit-identical for any value)")
	flag.BoolVar(&cfg.batch, "batch", false,
		"advance 64 replicates per machine word where the protocol and fault model allow it "+
			"(loss/gossip sweeps); a different Monte-Carlo sample than the scalar default, "+
			"still bit-identical across -workers values")
	flag.BoolVar(&cfg.des, "des", false,
		"run the event-driven calendar engines (pending-event wheel) instead of the scalar "+
			"round loops; output is bit-identical, only faster on large sparse regimes")
	flag.StringVar(&cfg.cpuProf, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&cfg.memProf, "memprofile", "", "write a heap profile to this file after the run")
	flag.StringVar(&cfg.manifest, "manifest", "",
		"write a run manifest (JSON) to this file (default <out>/manifest.json when -out is set)")
	cfg.tel.Register(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start(cfg.cpuProf, cfg.memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
	runErr := run(cfg, os.Stdout, os.Stderr)
	if err := stopProf(); err != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", err)
		os.Exit(1)
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "figures: %v\n", runErr)
		os.Exit(1)
	}
}
