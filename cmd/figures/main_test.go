package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clustercast/internal/stats"
)

// quickCfg keeps CLI tests fast.
func quickCfg() config {
	return config{fig: "delivery", format: "md", seed: 7, quick: true, maxN: 20}
}

func TestRunMarkdown(t *testing.T) {
	var out bytes.Buffer
	cfg := quickCfg()
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "### delivery") {
		t.Fatalf("markdown output missing figure header:\n%s", out.String())
	}
}

func TestRunCSVAndChart(t *testing.T) {
	for _, format := range []string{"csv", "chart", "json"} {
		var out bytes.Buffer
		cfg := quickCfg()
		cfg.format = format
		if err := run(cfg, &out); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if out.Len() == 0 {
			t.Fatalf("%s: empty output", format)
		}
		if format == "json" {
			var v map[string]interface{}
			if err := json.Unmarshal(out.Bytes(), &v); err != nil {
				t.Fatalf("json output does not parse: %v", err)
			}
			if v["ID"] != "delivery" {
				t.Fatalf("json ID = %v", v["ID"])
			}
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	cfg := quickCfg()
	cfg.fig = "nope"
	if err := run(cfg, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "unknown figure") {
		t.Fatalf("want unknown-figure error, got %v", err)
	}
}

func TestRunUnknownFormat(t *testing.T) {
	cfg := quickCfg()
	cfg.format = "yaml"
	if err := run(cfg, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "unknown format") {
		t.Fatalf("want unknown-format error, got %v", err)
	}
}

func TestRunBadMaxN(t *testing.T) {
	cfg := quickCfg()
	cfg.maxN = 5
	if err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Fatal("maxn below the smallest sweep size must error")
	}
}

func TestRunOutDir(t *testing.T) {
	dir := t.TempDir()
	cfg := quickCfg()
	cfg.outDir = dir
	if err := run(cfg, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "delivery.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "x,") {
		t.Fatalf("CSV file content wrong: %q", string(data[:20]))
	}
}

func TestRunnersCoverOrder(t *testing.T) {
	all := runners(quickCfg(), stats.StopRule{}, []int{20})
	for _, name := range figureOrder {
		if _, ok := all[name]; !ok {
			t.Fatalf("figureOrder entry %q has no runner", name)
		}
	}
	if len(all) != len(figureOrder) {
		t.Fatalf("%d runners vs %d ordered names — keep them in sync", len(all), len(figureOrder))
	}
}
