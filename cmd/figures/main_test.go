package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"clustercast/internal/obs"
	"clustercast/internal/stats"
)

// quickCfg keeps CLI tests fast.
func quickCfg() config {
	return config{fig: "delivery", format: "md", seed: 7, quick: true, maxN: 20}
}

func TestRunMarkdown(t *testing.T) {
	var out bytes.Buffer
	cfg := quickCfg()
	if err := run(cfg, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "### delivery") {
		t.Fatalf("markdown output missing figure header:\n%s", out.String())
	}
}

func TestRunCSVAndChart(t *testing.T) {
	for _, format := range []string{"csv", "chart", "json"} {
		var out bytes.Buffer
		cfg := quickCfg()
		cfg.format = format
		if err := run(cfg, &out, io.Discard); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		if out.Len() == 0 {
			t.Fatalf("%s: empty output", format)
		}
		if format == "json" {
			var v map[string]interface{}
			if err := json.Unmarshal(out.Bytes(), &v); err != nil {
				t.Fatalf("json output does not parse: %v", err)
			}
			if v["ID"] != "delivery" {
				t.Fatalf("json ID = %v", v["ID"])
			}
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	cfg := quickCfg()
	cfg.fig = "nope"
	if err := run(cfg, &bytes.Buffer{}, io.Discard); err == nil || !strings.Contains(err.Error(), "unknown figure") {
		t.Fatalf("want unknown-figure error, got %v", err)
	}
}

func TestRunUnknownFormat(t *testing.T) {
	cfg := quickCfg()
	cfg.format = "yaml"
	if err := run(cfg, &bytes.Buffer{}, io.Discard); err == nil || !strings.Contains(err.Error(), "unknown format") {
		t.Fatalf("want unknown-format error, got %v", err)
	}
}

func TestRunBadMaxN(t *testing.T) {
	cfg := quickCfg()
	cfg.maxN = 5
	if err := run(cfg, &bytes.Buffer{}, io.Discard); err == nil {
		t.Fatal("maxn below the smallest sweep size must error")
	}
}

func TestRunOutDir(t *testing.T) {
	dir := t.TempDir()
	cfg := quickCfg()
	cfg.outDir = dir
	if err := run(cfg, &bytes.Buffer{}, io.Discard); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "delivery.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "x,") {
		t.Fatalf("CSV file content wrong: %q", string(data[:20]))
	}
}

// TestRunOutDirManifest: -out writes a run manifest beside the CSVs, with
// per-stage replicate timing, the metric snapshot, and every output file;
// and enabling the obs layer must not perturb the replicated numbers —
// the CSVs stay byte-identical across worker counts.
func TestRunOutDirManifest(t *testing.T) {
	csvs := map[int][]byte{}
	var m *obs.Manifest
	for _, workers := range []int{1, 2} {
		dir := t.TempDir()
		cfg := quickCfg()
		cfg.fig = "6a" // workspace sweep path: carries per-stage timing
		cfg.outDir = dir
		cfg.workers = workers
		if err := run(cfg, &bytes.Buffer{}, io.Discard); err != nil {
			t.Fatal(err)
		}
		if obs.Enabled() {
			t.Fatal("run left the obs layer enabled")
		}
		data, err := os.ReadFile(filepath.Join(dir, "fig6a.csv"))
		if err != nil {
			t.Fatal(err)
		}
		csvs[workers] = data
		if m, err = obs.ReadManifest(filepath.Join(dir, "manifest.json")); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(csvs[1], csvs[2]) {
		t.Fatal("CSV output differs between -workers 1 and -workers 2 with manifests enabled")
	}
	if m.Tool != "figures" || m.Seed != 7 || m.Params["fig"] != "6a" {
		t.Fatalf("manifest identity wrong: %+v", m)
	}
	stages := map[string]obs.StageStat{}
	for _, st := range m.Stages {
		stages[st.Name] = st
	}
	if st := stages["replicate"]; st.Count == 0 || st.WallNs <= 0 {
		t.Fatalf("manifest missing replicate stage stats: %v", m.Stages)
	}
	counters := map[string]int64{}
	for _, c := range m.Metrics.Counters {
		counters[c.Name] = c.Value
	}
	if counters["replicate.observations"] == 0 {
		t.Fatalf("manifest missing replicate.observations: %v", m.Metrics.Counters)
	}
	found := false
	for _, out := range m.Outputs {
		found = found || strings.HasSuffix(out, "fig6a.csv")
	}
	if !found {
		t.Fatalf("manifest outputs missing fig6a.csv: %v", m.Outputs)
	}
}

func TestRunnersCoverOrder(t *testing.T) {
	all := runners(quickCfg(), stats.StopRule{}, []int{20})
	for _, name := range figureOrder {
		if _, ok := all[name]; !ok {
			t.Fatalf("figureOrder entry %q has no runner", name)
		}
	}
	if len(all) != len(figureOrder) {
		t.Fatalf("%d runners vs %d ordered names — keep them in sync", len(all), len(figureOrder))
	}
}
