// Command scale drives the backbone kernels at 10k–100k-node topologies —
// the scale-out regime two to three orders of magnitude past the paper's
// n≤500 sweeps — and reports per-replicate wall-clock and memory, so the
// scaling curves in BENCH_PR3.json can be reproduced (and profiled) outside
// the Go benchmark harness.
//
// Each replicate samples a connected unit-disk topology through the
// workspace path, then runs the requested stages: static25 (2.5-hop static
// backbone size), mocds (MO_CDS baseline size), dynamic25 (one dynamic-
// backbone broadcast, forward-node count). With -workers > 1 the static25
// and mocds constructions shard their per-clusterhead selections across
// that many goroutines (bit-identical to the sequential path; see
// backbone.ParallelWorkspace).
//
//	scale -n 50000 -d 18 -seed 2003 -reps 3 -workers 4
//	scale -n 10000 -stages dynamic25 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"clustercast/internal/backbone"
	"clustercast/internal/coverage"
	"clustercast/internal/experiment"
	"clustercast/internal/mocds"
	"clustercast/internal/prof"
	"clustercast/internal/topology"
)

type config struct {
	n       int
	d       float64
	seed    uint64
	reps    int
	workers int
	stages  string
	cpuProf string
	memProf string
}

func main() {
	var cfg config
	flag.IntVar(&cfg.n, "n", 10000, "number of nodes")
	flag.Float64Var(&cfg.d, "d", 18, "target average degree")
	flag.Uint64Var(&cfg.seed, "seed", 2003, "base RNG seed")
	flag.IntVar(&cfg.reps, "reps", 3, "replicates per stage")
	flag.IntVar(&cfg.workers, "workers", 1, "selection shards for static25/mocds (1 = sequential)")
	flag.StringVar(&cfg.stages, "stages", "static25,mocds,dynamic25", "comma-separated stages to run")
	flag.StringVar(&cfg.cpuProf, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&cfg.memProf, "memprofile", "", "write a heap profile to this file")
	flag.Parse()

	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "scale: %v\n", err)
		os.Exit(1)
	}
}

// stageFunc runs one kernel over an already-sampled network and returns its
// headline measurement (backbone size or forward-node count).
type stageFunc func(ws *experiment.Workspace, nw *topology.Network, source int) float64

func stageSet(workers int) map[string]stageFunc {
	pbb := backbone.NewParallelWorkspace()
	pmo := mocds.NewParallelWorkspace()
	return map[string]stageFunc{
		"static25": func(ws *experiment.Workspace, nw *topology.Network, _ int) float64 {
			cl := ws.Cluster.LowestID(nw.G)
			ws.Builder.Reset(nw.G, cl, coverage.Hop25)
			if workers > 1 {
				return float64(pbb.StaticSize(&ws.Builder, cl, backbone.Options{}, workers))
			}
			return float64(ws.Backbone.StaticSize(&ws.Builder, cl, backbone.Options{}))
		},
		"mocds": func(ws *experiment.Workspace, nw *topology.Network, _ int) float64 {
			cl := ws.Cluster.LowestID(nw.G)
			ws.Builder.Reset(nw.G, cl, coverage.Hop3)
			if workers > 1 {
				return float64(pmo.SizeFrom(&ws.Builder, cl, workers))
			}
			return float64(ws.MOCDS.SizeFrom(&ws.Builder, cl))
		},
		"dynamic25": func(ws *experiment.Workspace, nw *topology.Network, source int) float64 {
			cl := ws.Cluster.LowestID(nw.G)
			p := ws.Dynamic.NewWith(nw.G, cl, coverage.Hop25)
			return float64(p.BroadcastWS(source).ForwardCount())
		},
	}
}

func run(cfg config, out *os.File) error {
	stages := stageSet(cfg.workers)
	var names []string
	for _, s := range strings.Split(cfg.stages, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		if _, ok := stages[s]; !ok {
			return fmt.Errorf("unknown stage %q (have static25, mocds, dynamic25)", s)
		}
		names = append(names, s)
	}
	if len(names) == 0 {
		return fmt.Errorf("no stages selected")
	}

	stopProf, err := prof.Start(cfg.cpuProf, cfg.memProf)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "scale: n=%d d=%g seed=%d reps=%d workers=%d (GOMAXPROCS=%d)\n",
		cfg.n, cfg.d, cfg.seed, cfg.reps, cfg.workers, runtime.GOMAXPROCS(0))
	ws := experiment.NewWorkspace()
	sc := experiment.DefaultScenario(cfg.n, cfg.d, cfg.seed)
	for _, name := range names {
		st := stages[name]
		kernelTimes := make([]time.Duration, 0, cfg.reps)
		for rep := 0; rep < cfg.reps; rep++ {
			t0 := time.Now()
			nw, _, ok := sc.SampleWS(ws, "scale-"+name, rep)
			if !ok {
				return fmt.Errorf("stage %s rep %d: no connected topology sampled (raise -d or lower -n)", name, rep)
			}
			sample := time.Since(t0)
			t1 := time.Now()
			v := st(ws, nw, cfg.n/2)
			kernel := time.Since(t1)
			kernelTimes = append(kernelTimes, kernel)
			fmt.Fprintf(out, "%-10s rep=%d  sample=%-12v kernel=%-12v result=%g\n",
				name, rep, sample.Round(time.Microsecond), kernel.Round(time.Microsecond), v)
		}
		sort.Slice(kernelTimes, func(i, j int) bool { return kernelTimes[i] < kernelTimes[j] })
		fmt.Fprintf(out, "%-10s median kernel %v over %d reps\n",
			name, kernelTimes[len(kernelTimes)/2].Round(time.Microsecond), len(kernelTimes))
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(out, "memory: heap-in-use=%.1f MiB  total-alloc=%.1f MiB  sys=%.1f MiB\n",
		float64(ms.HeapInuse)/(1<<20), float64(ms.TotalAlloc)/(1<<20), float64(ms.Sys)/(1<<20))

	return stopProf()
}
