// Command scale drives the backbone kernels at 10k–100k-node topologies —
// the scale-out regime two to three orders of magnitude past the paper's
// n≤500 sweeps — and reports per-replicate wall-clock and memory, so the
// scaling curves in BENCH_PR3.json can be reproduced (and profiled) outside
// the Go benchmark harness.
//
// Each replicate samples a connected unit-disk topology through the
// workspace path, then runs the requested stages: static25 (2.5-hop static
// backbone size), mocds (MO_CDS baseline size), dynamic25 (one dynamic-
// backbone broadcast, forward-node count). With -workers > 1 the static25
// and mocds constructions shard their per-clusterhead selections across
// that many goroutines (bit-identical to the sequential path; see
// backbone.ParallelWorkspace).
//
// With -manifest the run records a reproducibility manifest (invocation,
// environment, per-stage wall/alloc from the obs registry); with -trace the
// first dynamic25 replicate records its broadcast event stream as JSONL
// for cmd/trace.
//
//	scale -n 50000 -d 18 -seed 2003 -reps 3 -workers 4
//	scale -n 10000 -stages dynamic25 -cpuprofile cpu.pprof -memprofile mem.pprof
//	scale -n 2000 -stages dynamic25 -trace trace.jsonl -manifest manifest.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"clustercast/internal/backbone"
	"clustercast/internal/coverage"
	"clustercast/internal/experiment"
	"clustercast/internal/mocds"
	"clustercast/internal/obs"
	"clustercast/internal/obs/live"
	"clustercast/internal/prof"
	"clustercast/internal/topology"
)

type config struct {
	n        int
	d        float64
	seed     uint64
	reps     int
	workers  int
	buildW   int
	stages   string
	cpuProf  string
	memProf  string
	manifest string
	trace    string
	des      bool
	tel      live.Flags
}

func main() {
	var cfg config
	flag.IntVar(&cfg.n, "n", 10000, "number of nodes")
	flag.Float64Var(&cfg.d, "d", 18, "target average degree")
	flag.Uint64Var(&cfg.seed, "seed", 2003, "base RNG seed")
	flag.IntVar(&cfg.reps, "reps", 3, "replicates per stage")
	flag.IntVar(&cfg.workers, "workers", 1, "selection shards for static25/mocds (1 = sequential)")
	flag.IntVar(&cfg.buildW, "buildworkers", 0,
		"construction-stage shards: unit-disk sweep, clusterhead election and coverage digest (0 = sequential reference paths; results are bit-identical either way)")
	flag.StringVar(&cfg.stages, "stages", "static25,mocds,dynamic25", "comma-separated stages to run")
	flag.BoolVar(&cfg.des, "des", false,
		"run dynamic25 broadcasts on the event-calendar engine (bit-identical results)")
	flag.StringVar(&cfg.cpuProf, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&cfg.memProf, "memprofile", "", "write a heap profile to this file")
	flag.StringVar(&cfg.manifest, "manifest", "", "write a run manifest (JSON) to this file")
	flag.StringVar(&cfg.trace, "trace", "", "record the first dynamic25 replicate's event stream (JSONL) to this file")
	cfg.tel.Register(flag.CommandLine)
	flag.Parse()

	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "scale: %v\n", err)
		os.Exit(1)
	}
}

// stageFunc runs one kernel over an already-sampled network and returns its
// headline measurement (backbone size or forward-node count). tr is non-nil
// only on the replicate whose event stream the user asked to record; stages
// without trace support ignore it.
type stageFunc func(ws *experiment.Workspace, nw *topology.Network, source int, tr *obs.Tracer) float64

func stageSet(workers int, des bool) map[string]stageFunc {
	pbb := backbone.NewParallelWorkspace()
	pmo := mocds.NewParallelWorkspace()
	return map[string]stageFunc{
		"static25": func(ws *experiment.Workspace, nw *topology.Network, _ int, _ *obs.Tracer) float64 {
			cl := ws.Elect(nw.G)
			ws.Digest(nw.G, cl, coverage.Hop25)
			if workers > 1 {
				return float64(pbb.StaticSize(&ws.Builder, cl, backbone.Options{}, workers))
			}
			return float64(ws.Backbone.StaticSize(&ws.Builder, cl, backbone.Options{}))
		},
		"mocds": func(ws *experiment.Workspace, nw *topology.Network, _ int, _ *obs.Tracer) float64 {
			cl := ws.Elect(nw.G)
			ws.Digest(nw.G, cl, coverage.Hop3)
			if workers > 1 {
				return float64(pmo.SizeFrom(&ws.Builder, cl, workers))
			}
			return float64(ws.MOCDS.SizeFrom(&ws.Builder, cl))
		},
		"dynamic25": func(ws *experiment.Workspace, nw *topology.Network, source int, tr *obs.Tracer) float64 {
			cl := ws.Elect(nw.G)
			p := ws.Dynamic.NewWith(nw.G, cl, coverage.Hop25)
			// Set unconditionally: the pooled protocol keeps its tracer
			// across NewWith, so untraced replicates must clear it.
			p.SetTracer(tr)
			p.SetDES(des)
			return float64(p.BroadcastWS(source).ForwardCount())
		},
	}
}

// tracedStage is the stage whose event stream -trace records.
const tracedStage = "dynamic25"

// run executes the configured stages. The named return lets the deferred
// telemetry shutdown (final heartbeat, self-scrape) surface its error.
func run(cfg config, out io.Writer) (retErr error) {
	experiment.SetBuildWorkers(cfg.buildW)
	stages := stageSet(cfg.workers, cfg.des)
	var names []string
	for _, s := range strings.Split(cfg.stages, ",") {
		s = strings.TrimSpace(s)
		if s == "" {
			continue
		}
		if _, ok := stages[s]; !ok {
			return fmt.Errorf("unknown stage %q (have static25, mocds, dynamic25)", s)
		}
		names = append(names, s)
	}
	if len(names) == 0 {
		return fmt.Errorf("no stages selected")
	}

	var tracer *obs.Tracer
	if cfg.trace != "" {
		traced := false
		for _, n := range names {
			traced = traced || n == tracedStage
		}
		if !traced {
			return fmt.Errorf("-trace needs the %s stage selected (have %s)", tracedStage, cfg.stages)
		}
		// One broadcast emits O(m) deliver/duplicate events plus the
		// per-head protocol events; 16 slots per node keeps paper-density
		// (d=18) traces loss-free with headroom.
		tracer = obs.NewTracer(16 * cfg.n)
	}

	var manifest *obs.Manifest
	if cfg.manifest != "" || cfg.trace != "" || cfg.tel.Active() {
		obs.Enable()
		defer obs.Disable()
		obs.Default.Reset()
		obs.ResetStages()
	}
	sess, err := cfg.tel.Start(out)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := sess.Close(); retErr == nil {
			retErr = cerr
		}
	}()
	if cfg.manifest != "" {
		manifest = obs.NewManifest("scale")
		manifest.Seed = cfg.seed
		manifest.Workers = cfg.workers
		manifest.Param("n", cfg.n).Param("d", cfg.d).Param("reps", cfg.reps).Param("stages", strings.Join(names, ",")).Param("buildworkers", cfg.buildW)
	}

	stopProf, err := prof.Start(cfg.cpuProf, cfg.memProf)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "scale: n=%d d=%g seed=%d reps=%d workers=%d buildworkers=%d (GOMAXPROCS=%d)\n",
		cfg.n, cfg.d, cfg.seed, cfg.reps, cfg.workers, cfg.buildW, runtime.GOMAXPROCS(0))
	ws := experiment.NewWorkspace()
	sc := experiment.DefaultScenario(cfg.n, cfg.d, cfg.seed)
	var clk obs.StageClock
	var ms0, ms1 runtime.MemStats
	progReps := obs.NewProgress("scale.reps")
	progReps.AddTotal(int64(len(names) * cfg.reps))
	for _, name := range names {
		st := stages[name]
		kernelTimes := make([]time.Duration, 0, cfg.reps)
		var heapHigh uint64 // stage heap high-water mark (HeapInuse after a kernel)
		// The same high-water as a registry gauge, so it lands in the
		// manifest counter dump and in live heartbeats, not just stdout.
		gHeap := obs.NewGauge("scale." + name + ".heap_high_water_bytes")
		for rep := 0; rep < cfg.reps; rep++ {
			t0 := time.Now()
			nw, _, ok := sc.SampleWS(ws, "scale-"+name, rep)
			if !ok {
				// SampleWS records the generator's diagnosis (attempt cap,
				// connectivity); surface it instead of a generic shrug.
				if serr := experiment.TakeSampleError(); serr != nil {
					return fmt.Errorf("stage %s: %w", name, serr)
				}
				return fmt.Errorf("stage %s rep %d: no connected topology sampled (raise -d or lower -n)", name, rep)
			}
			sample := time.Since(t0)
			var tr *obs.Tracer
			if tracer != nil && name == tracedStage && rep == 0 {
				tr = tracer
			}
			measured := obs.Enabled()
			if measured {
				runtime.ReadMemStats(&ms0)
			}
			t1 := time.Now()
			v := st(ws, nw, cfg.n/2, tr)
			kernel := time.Since(t1)
			// Heap high-water: HeapInuse right after the kernel catches the
			// stage's peak structures (digests, coverage arenas, engine
			// state) before the next sample disturbs them.
			runtime.ReadMemStats(&ms1)
			if ms1.HeapInuse > heapHigh {
				heapHigh = ms1.HeapInuse
			}
			gHeap.SetMax(int64(ms1.HeapInuse))
			progReps.Step()
			if measured {
				clk.Add(name+".sample", sample.Nanoseconds())
				clk.Add(name+".kernel", kernel.Nanoseconds())
				clk.AddAlloc(name+".kernel", int64(ms1.TotalAlloc-ms0.TotalAlloc))
			}
			kernelTimes = append(kernelTimes, kernel)
			fmt.Fprintf(out, "%-10s rep=%d  sample=%-12v kernel=%-12v heap=%-10s result=%g\n",
				name, rep, sample.Round(time.Microsecond), kernel.Round(time.Microsecond),
				fmt.Sprintf("%.1fMiB", float64(ms1.HeapInuse)/(1<<20)), v)
		}
		sort.Slice(kernelTimes, func(i, j int) bool { return kernelTimes[i] < kernelTimes[j] })
		fmt.Fprintf(out, "%-10s median kernel %v over %d reps, heap high-water %.1f MiB\n",
			name, kernelTimes[len(kernelTimes)/2].Round(time.Microsecond), len(kernelTimes), float64(heapHigh)/(1<<20))
	}
	obs.MergeStages(&clk)

	if tracer != nil {
		f, err := os.Create(cfg.trace)
		if err != nil {
			return err
		}
		werr := tracer.WriteJSONL(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("writing trace: %w", werr)
		}
		fmt.Fprintf(out, "trace: %s (%d events, %d dropped)\n", cfg.trace, tracer.Len(), tracer.Dropped())
		if manifest != nil {
			manifest.AddOutput(cfg.trace)
		}
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(out, "memory: heap-in-use=%.1f MiB  total-alloc=%.1f MiB  sys=%.1f MiB\n",
		float64(ms.HeapInuse)/(1<<20), float64(ms.TotalAlloc)/(1<<20), float64(ms.Sys)/(1<<20))

	if manifest != nil {
		manifest.AddOutput(cfg.manifest)
		if err := manifest.WriteFile(cfg.manifest); err != nil {
			return fmt.Errorf("writing manifest: %w", err)
		}
		fmt.Fprintf(out, "manifest: %s\n", cfg.manifest)
	}

	return stopProf()
}
