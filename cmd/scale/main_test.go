package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"clustercast/internal/obs"
)

func TestRunAllStages(t *testing.T) {
	var out bytes.Buffer
	cfg := config{n: 300, d: 12, seed: 11, reps: 2, workers: 1, stages: "static25,mocds,dynamic25"}
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"static25", "mocds", "dynamic25", "median kernel", "memory:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
}

func TestRunUnknownStage(t *testing.T) {
	cfg := config{n: 100, d: 12, seed: 1, reps: 1, workers: 1, stages: "warp"}
	if err := run(cfg, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "unknown stage") {
		t.Fatalf("want unknown-stage error, got %v", err)
	}
}

// TestRunSampleErrorPropagates: an unsatisfiable topology spec must surface
// the generator's diagnosis (the attempt cap), not a generic shrug.
func TestRunSampleErrorPropagates(t *testing.T) {
	cfg := config{n: 400, d: 2, seed: 1, reps: 1, workers: 1, stages: "static25"}
	err := run(cfg, &bytes.Buffer{})
	if err == nil {
		t.Fatal("sparse spec unexpectedly sampled a connected topology")
	}
	if !strings.Contains(err.Error(), "attempts") {
		t.Fatalf("error lost the generator diagnosis: %v", err)
	}
	if !strings.Contains(err.Error(), "stage static25") {
		t.Fatalf("error lost the stage context: %v", err)
	}
}

func TestRunTraceNeedsDynamicStage(t *testing.T) {
	cfg := config{n: 100, d: 12, seed: 1, reps: 1, workers: 1, stages: "static25",
		trace: filepath.Join(t.TempDir(), "t.jsonl")}
	if err := run(cfg, &bytes.Buffer{}); err == nil || !strings.Contains(err.Error(), "dynamic25") {
		t.Fatalf("want dynamic25-required error, got %v", err)
	}
}

// TestRunManifestAndTrace: the manifest records per-stage wall/alloc stats
// and the trace reconciles with the printed forward-node count.
func TestRunManifestAndTrace(t *testing.T) {
	dir := t.TempDir()
	mpath := filepath.Join(dir, "manifest.json")
	tpath := filepath.Join(dir, "trace.jsonl")
	var out bytes.Buffer
	cfg := config{n: 300, d: 12, seed: 11, reps: 2, workers: 2, stages: "dynamic25",
		manifest: mpath, trace: tpath}
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	if obs.Enabled() {
		t.Fatal("run left the obs layer enabled")
	}

	m, err := obs.ReadManifest(mpath)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tool != "scale" || m.Seed != 11 || m.Workers != 2 || m.Params["stages"] != "dynamic25" {
		t.Fatalf("manifest identity wrong: %+v", m)
	}
	stages := map[string]obs.StageStat{}
	for _, st := range m.Stages {
		stages[st.Name] = st
	}
	for _, name := range []string{"dynamic25.sample", "dynamic25.kernel"} {
		st, ok := stages[name]
		if !ok || st.Count != 2 || st.WallNs <= 0 {
			t.Fatalf("stage %s missing or implausible: %+v (have %v)", name, st, m.Stages)
		}
	}
	if stages["dynamic25.kernel"].AllocBytes <= 0 {
		t.Fatalf("kernel stage has no alloc accounting: %+v", stages["dynamic25.kernel"])
	}

	f, err := os.Open(tpath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("trace is empty")
	}
	senders := map[int]bool{}
	for _, ev := range events {
		if ev.Kind == obs.EvSend {
			senders[ev.Node] = true
		}
	}
	// rep 0 prints "result=<forward count>"; the trace's distinct senders
	// must match it.
	var repLine string
	for _, line := range strings.Split(out.String(), "\n") {
		if strings.Contains(line, "rep=0") {
			repLine = line
			break
		}
	}
	want := strings.TrimSpace(repLine[strings.Index(repLine, "result=")+len("result="):])
	if got := len(senders); want == "" || want != strconv.Itoa(got) {
		t.Fatalf("trace senders %d != printed result %q", got, want)
	}
}
