module clustercast

go 1.22
