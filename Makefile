GO ?= go

# Baseline the bench-compare target diffs against.
BENCH_BASELINE ?= BENCH_PR3.json

.PHONY: all ci build vet test test-race bench-smoke bench bench-compare bench-scale bench-batch bench-des bench-build figures trace-smoke faults-smoke telemetry-smoke workload-smoke

all: vet test

# Full CI gate: vet, tests, and the race-detector pass.
ci: vet test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

# Race-detector pass over the whole module; the replication and experiment
# packages exercise the parallel paths directly.
test-race:
	$(GO) test -race ./...

# Quick benchmark smoke: the end-to-end sweep point plus the hot kernels it
# is built from. Compare against BENCH_PR1.json for regressions.
bench-smoke:
	$(GO) test -run xxx -bench 'SweepPoint|TopologyGenerate|CoverageBuilder|StaticBackbone|DynamicBroadcast|BitsetOps' -benchtime 1s .

# Re-run the baselined benchmarks and diff ns/op + allocs/op against
# $(BENCH_BASELINE), warning on regressions beyond 10%. -short keeps the
# gate quick by skipping the n=50000 scale points; run `make bench-scale`
# for the full curves benchcmp renders per network size.
bench-compare:
	$(GO) test -short -run xxx -bench 'SweepPoint|MobilityStep|TopologyGenerate|CoverageBuilder|StaticBackbone|DynamicBroadcast|ConstructionThroughput|BitsetOps|BitsetReset|ScaleReplicate|ScaleKernels' -benchtime 1s . \
		| $(GO) run ./cmd/benchcmp -baseline $(BENCH_BASELINE) -threshold 0.10

# Full scaling curves (n=1000..50000, several minutes), diffed by network
# size against $(BENCH_BASELINE).
bench-scale:
	$(GO) test -run xxx -bench 'ScaleReplicate|ScaleKernels' -benchtime 10x . \
		| $(GO) run ./cmd/benchcmp -baseline $(BENCH_BASELINE) -threshold 0.10

# Bit-parallel replication gate: the n=1000 batch-vs-scalar point diffed
# against BENCH_PR6.json, a race pass over the 64-wide engine's equivalence
# suites, and the batched figure path end to end through the cmd/figures
# -batch flag (the CSV bytes must not depend on -workers; see
# TestBatchFiguresWorkerInvariant for the in-process version).
bench-batch:
	$(GO) test -run xxx -bench 'ReplicateBatch/n=1000$$' -benchtime 10x . \
		| $(GO) run ./cmd/benchcmp -baseline BENCH_PR6.json -threshold 0.10
	$(GO) test -race -run 'Batch' ./internal/broadcast ./internal/faults ./internal/stats ./internal/experiment
	$(GO) run ./cmd/figures -fig gossip -quick -batch -seed 7 -workers 4 -format csv

# Event-calendar engine gate: the n=1000 des-vs-scalar points diffed against
# BENCH_PR7.json, a race pass over the calendar's equivalence suites (wheel,
# shards, the three engine ports and the figure-level bit-identity sweep),
# and the -des figure path end to end through cmd/figures (the CSV bytes are
# identical to the scalar engines by construction; see
# TestDESFiguresBitIdentical for the in-process version).
bench-des:
	$(GO) test -run xxx -bench 'DES(MAC|Wire|Timed)/n=1000$$' -benchtime 10x . \
		| $(GO) run ./cmd/benchcmp -baseline BENCH_PR7.json -threshold 0.10
	$(GO) test -race -run 'DES|Wheel|Shards' ./internal/des ./internal/broadcast ./internal/sim ./internal/experiment
	$(GO) run ./cmd/figures -fig gossip -quick -des -seed 7 -workers 4 -format csv

# Sharded construction-stage gate: the unit-disk sweep, clusterhead
# election and coverage-digest curves diffed against BENCH_PR8.json
# (-short keeps it to n≤10000), a race pass over the parallel-path
# equivalence suites (digest, election, grid build, per-head coverage
# assembly, and the experiment-level bit-identity sweep), and a
# -buildworkers smoke through cmd/scale end to end.
bench-build:
	$(GO) test -short -run xxx -bench 'ShardedCoverage|ParallelCluster|ParallelTopology' -benchtime 10x \
		./internal/coverage ./internal/cluster ./internal/topology \
		| $(GO) run ./cmd/benchcmp -baseline BENCH_PR8.json -threshold 0.10
	$(GO) test -race -run 'Parallel|BuildWorkers' \
		./internal/coverage ./internal/cluster ./internal/topology ./internal/dynamicb ./internal/experiment
	$(GO) run ./cmd/scale -n 2000 -d 12 -reps 1 -buildworkers 8

# Full benchmark suite (several minutes).
bench:
	$(GO) test -run xxx -bench . -benchtime 1s .

# Regenerate the paper's figures (CSV + markdown under figures/).
figures:
	$(GO) run ./cmd/figures

# Observability smoke: record a traced dynamic-backbone broadcast with its
# run manifest, then replay the trace through the inspector (which
# reconciles the event stream against itself). Artifacts land in artifacts/
# for CI upload.
trace-smoke:
	mkdir -p artifacts
	$(GO) run ./cmd/manetsim -n 60 -d 8 -seed 7 -source 0 -protocols dynamic-2.5 \
		-trace artifacts/trace.jsonl -manifest artifacts/manifest.json
	$(GO) run ./cmd/trace artifacts/trace.jsonl
	$(GO) run ./cmd/scale -n 500 -d 12 -reps 1 -stages dynamic25 \
		-trace artifacts/scale-trace.jsonl -manifest artifacts/scale-manifest.json
	$(GO) run ./cmd/trace artifacts/scale-trace.jsonl

# Live-telemetry smoke: run cmd/scale with the full telemetry bundle — a
# heartbeat JSONL stream, the HTTP endpoint, and a pre-exit self-scrape of
# /metrics and /progress (deterministic artifacts; no curl race against the
# process lifetime) — then schema-validate and digest the heartbeat stream
# through the inspector. Artifacts land in artifacts/telemetry for CI upload.
telemetry-smoke:
	mkdir -p artifacts/telemetry
	$(GO) run ./cmd/scale -n 2000 -d 12 -reps 2 -stages static25,dynamic25 \
		-telemetry 127.0.0.1:0 -hb-every 25ms \
		-heartbeat artifacts/telemetry/heartbeat.jsonl \
		-telemetry-scrape artifacts/telemetry
	$(GO) run ./cmd/trace -heartbeat artifacts/telemetry/heartbeat.jsonl
	grep -q 'clustercast_progress_done{task="scale.reps"} 4' artifacts/telemetry/metrics.prom || \
		{ echo "telemetry-smoke: scale.reps progress missing from /metrics scrape" >&2; exit 1; }
	grep -q '^clustercast_scale_dynamic25_heap_high_water_bytes ' artifacts/telemetry/metrics.prom || \
		{ echo "telemetry-smoke: heap high-water gauge missing from /metrics scrape" >&2; exit 1; }

# Traffic-workload gate: a race pass over the multi-source MAC engine,
# workload, route-discovery and parent-chain equivalence suites; the
# n=1000 scalar-vs-des throughput points diffed against BENCH_PR10.json;
# a -traffic manetsim load report; and the traffic/discovery figures end
# to end under the quick rule (CSV checksums make worker-count
# nondeterminism visible in CI logs). Artifacts land in artifacts/workload.
workload-smoke:
	mkdir -p artifacts/workload
	$(GO) test -race -run 'Workload|MultiMAC|Discover|ParentChain|RouteLen|ValidateDegenerate' \
		./internal/broadcast ./internal/workload ./internal/routing ./internal/experiment ./cmd/manetsim
	$(GO) test -run xxx -bench 'WorkloadThroughput/n=1000$$' -benchtime 10x . \
		| $(GO) run ./cmd/benchcmp -baseline BENCH_PR10.json -threshold 0.10
	$(GO) run ./cmd/manetsim -n 80 -d 10 -seed 7 -protocols flooding \
		-traffic proc=poisson,rate=0.3,flows=24
	$(GO) run ./cmd/figures -fig traffic,discovery -quick -seed 7 -workers 4 -out artifacts/workload -format csv > /dev/null
	cksum artifacts/workload/*.csv

# Fault-injection smoke: a churn-and-repair manetsim run plus the two
# failure-sweep figures under the quick replication rule. The CSV checksums
# make worker-count nondeterminism visible in CI logs (the figure bytes must
# not depend on parallelism).
faults-smoke:
	mkdir -p artifacts/faults
	$(GO) run ./cmd/manetsim -n 80 -d 10 -seed 7 \
		-faults mtbf=100,mttr=40,burst=0.1:4,warmup=500
	$(GO) run ./cmd/figures -fig faults,burst -quick -seed 7 -out artifacts/faults
	cksum artifacts/faults/*.csv
