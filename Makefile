GO ?= go

.PHONY: all build vet test test-race bench-smoke bench figures

all: vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: build
	$(GO) test ./...

# Race-detector pass over the whole module; the replication and experiment
# packages exercise the parallel paths directly.
test-race:
	$(GO) test -race ./...

# Quick benchmark smoke: the end-to-end sweep point plus the hot kernels it
# is built from. Compare against BENCH_PR1.json for regressions.
bench-smoke:
	$(GO) test -run xxx -bench 'SweepPoint|TopologyGenerate|CoverageBuilder|StaticBackbone|DynamicBroadcast|BitsetOps' -benchtime 1s .

# Full benchmark suite (several minutes).
bench:
	$(GO) test -run xxx -bench . -benchtime 1s .

# Regenerate the paper's figures (CSV + markdown under figures/).
figures:
	$(GO) run ./cmd/figures
