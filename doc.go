// Package clustercast reproduces "A Cluster-Based Backbone Infrastructure
// for Broadcasting in MANETs" (Wei Lou, Jie Wu, IPDPS 2003): cluster-based
// static (source-independent) and dynamic (source-dependent) connected-
// dominating-set backbones for broadcast in mobile ad hoc networks, the
// MO_CDS baseline, the classic broadcast protocols of the related work, a
// distributed wire-protocol simulator, and a full experiment harness that
// regenerates every figure of the paper's evaluation.
//
// The implementation lives under internal/; start at internal/core for the
// high-level API, and see DESIGN.md for the system inventory and
// EXPERIMENTS.md for the reproduced results. The benchmarks in
// bench_test.go regenerate one data point per paper figure; the cmd/figures
// tool runs the full sweeps.
package clustercast
